// Package vm is a bytecode compiler and stack virtual machine for
// MiniC — a second execution engine alongside the tree-walking
// interpreter in internal/interp.
//
// The real CBI system instruments compiled C programs, so a compiled
// backend makes the reproduction's performance story honest: the
// instrumentation-overhead benchmarks can be run against a much faster
// engine. The VM implements exactly the same observable semantics as
// the tree-walker — values, the randomized heap layout, trap kinds,
// crash stacks, and the order of observer events — which the
// engine-differential tests in this package verify on thousands of
// runs.
package vm

import (
	"fmt"

	"cbi/internal/lang"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Instructions are fixed-width: {Op, A, B, C}.
const (
	opNop Op = iota

	// Stack and memory.
	opConst       // push consts[A]
	opPop         // drop top
	opLoadLocal   // push locals[A]
	opStoreLocal  // locals[A] = pop
	opLoadGlobal  // push globals[A]
	opStoreGlobal // globals[A] = pop

	// Arithmetic/logic; operands popped right-then-left, result pushed.
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opEq // B=1 negates (!=)
	opLt
	opLe
	opGt
	opGe
	opNeg
	opNot

	// Control flow.
	opJump        // pc = A
	opJumpIfZero  // pop; if 0 jump to A (traps if non-int)
	opJumpIfNZero // pop; if != 0 jump to A
	opDup         // duplicate top

	// Heap.
	opNewArray  // pop count; push pointer; A = type index
	opNewStruct // push pointer; A = type index
	opIndexAddr // pop idx, base-ptr; push address; A = elem size, C = node (PtrDeref)
	opLoadAddr  // pop address; push heap value
	opStoreAddr // pop value, address; store
	opFieldAddr // pop base-ptr; push address of field; A = field index, C = node (PtrDeref)
	opAddrField // pop address; push address + A (dot on struct lvalue)

	// Calls.
	opCall        // A = function index, B = arg count
	opCallBuiltin // A = builtin index, B = arg count
	opReturn      // pop return value and pop frame
	opReturnVoid

	// Observer events.
	opObsBranch // peek top (int); Branch(A as NodeID, top != 0)
	opObsRet    // peek top; if int, IntReturn(A, top)
	// opObsAssignLocal fires ScalarAssign for a local/global store:
	// peek new value (top), old value from slot A (B=0 local, B=1
	// global), node C.
	opObsAssignLocal
	// opStoreHeapObs pops [addr, new], loads the old value, stores the
	// new one (trapping on unmapped memory), and fires an observer
	// event for node A: ScalarAssign when B=1, PtrAssign when B=2,
	// nothing when B=0.
	opStoreHeapObs
	// opObsPtrLocal stores the popped value into slot A (B=1: global)
	// and fires PtrAssign for node C when the value is a pointer.
	opObsPtrLocal

	// Misc.
	opLine // A = source line (for stack traces)
)

var opNames = map[Op]string{
	opNop: "nop", opConst: "const", opPop: "pop",
	opLoadLocal: "loadlocal", opStoreLocal: "storelocal",
	opLoadGlobal: "loadglobal", opStoreGlobal: "storeglobal",
	opAdd: "add", opSub: "sub", opMul: "mul", opDiv: "div", opMod: "mod",
	opEq: "eq", opLt: "lt", opLe: "le", opGt: "gt", opGe: "ge",
	opNeg: "neg", opNot: "not",
	opJump: "jump", opJumpIfZero: "jz", opJumpIfNZero: "jnz", opDup: "dup",
	opNewArray: "newarray", opNewStruct: "newstruct",
	opIndexAddr: "indexaddr", opLoadAddr: "loadaddr", opStoreAddr: "storeaddr",
	opFieldAddr: "fieldaddr", opAddrField: "addrfield",
	opCall: "call", opCallBuiltin: "callbuiltin",
	opReturn: "return", opReturnVoid: "returnvoid",
	opObsBranch: "obsbranch", opObsRet: "obsret",
	opObsAssignLocal: "obsassignlocal", opStoreHeapObs: "storeheapobs",
	opObsPtrLocal: "obsptrlocal",
	opLine:        "line",
}

// String names the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one fixed-width instruction.
type Instr struct {
	Op      Op
	A, B, C int32
}

// Func is a compiled function.
type Func struct {
	Name    string
	NParams int
	NLocals int
	Code    []Instr
	// Line is the function's declaration line (initial frame line).
	Line int
}

// Module is a compiled program.
type Module struct {
	Prog   *lang.Program
	Funcs  []*Func
	Main   int
	Consts []Value
	// ElemTypes holds the element types used by new[] / new, indexed
	// by opNewArray/opNewStruct A operands.
	ElemTypes []lang.Type
	// Builtins indexes builtin names used by opCallBuiltin.
	Builtins []string
	// Globals initial values.
	GlobalInit []Value
}

type compiler struct {
	mod      *Module
	fnIndex  map[string]int
	biIndex  map[string]int
	typIndex map[string]int

	fn       *Func
	curLine  int
	loopBrk  []int // patch lists
	loopCont []int
	brkStack [][]int
	cntStack [][]int
}

// Compile translates a resolved program into a bytecode module.
func Compile(prog *lang.Program) (*Module, error) {
	c := &compiler{
		mod:      &Module{Prog: prog},
		fnIndex:  map[string]int{},
		biIndex:  map[string]int{},
		typIndex: map[string]int{},
	}
	// Pre-register functions for mutual recursion.
	for i, f := range prog.Funcs {
		c.fnIndex[f.Name] = i
		c.mod.Funcs = append(c.mod.Funcs, &Func{
			Name:    f.Name,
			NParams: len(f.Params),
			NLocals: f.Locals,
			Line:    f.Pos().Line,
		})
	}
	main, ok := c.fnIndex["main"]
	if !ok {
		return nil, fmt.Errorf("vm: no main function")
	}
	c.mod.Main = main

	// Global initial values.
	c.mod.GlobalInit = make([]Value, prog.GlobalSlots)
	for _, g := range prog.Globals {
		v := zeroOf(g.DeclType)
		switch lit := g.Init.(type) {
		case *lang.IntLit:
			v = IntVal(lit.Value)
		case *lang.StrLit:
			v = StrVal(lit.Value)
		case *lang.NullLit:
			v = Null
		}
		c.mod.GlobalInit[g.Sym.Slot] = v
	}

	for i, f := range prog.Funcs {
		c.fn = c.mod.Funcs[i]
		c.curLine = -1
		if err := c.compileFunc(f); err != nil {
			return nil, err
		}
	}
	return c.mod, nil
}

// MustCompile compiles or panics; for tests and examples.
func MustCompile(prog *lang.Program) *Module {
	m, err := Compile(prog)
	if err != nil {
		panic(err)
	}
	return m
}

func (c *compiler) emit(op Op, a, b, cc int32) int {
	c.fn.Code = append(c.fn.Code, Instr{Op: op, A: a, B: b, C: cc})
	return len(c.fn.Code) - 1
}

func (c *compiler) here() int { return len(c.fn.Code) }

func (c *compiler) patch(at int, target int) { c.fn.Code[at].A = int32(target) }

func (c *compiler) line(pos lang.Pos) {
	if pos.Line != c.curLine {
		c.curLine = pos.Line
		c.emit(opLine, int32(pos.Line), 0, 0)
	}
}

func (c *compiler) constIndex(v Value) int32 {
	for i, existing := range c.mod.Consts {
		if sameConst(existing, v) {
			return int32(i)
		}
	}
	c.mod.Consts = append(c.mod.Consts, v)
	return int32(len(c.mod.Consts) - 1)
}

func sameConst(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KInt:
		return a.Int == b.Int
	case KStr:
		return a.Str == b.Str
	default:
		return a.Block == b.Block && a.Off == b.Off
	}
}

func (c *compiler) typeIndex(t lang.Type) int32 {
	key := t.String()
	if i, ok := c.typIndex[key]; ok {
		return int32(i)
	}
	c.typIndex[key] = len(c.mod.ElemTypes)
	c.mod.ElemTypes = append(c.mod.ElemTypes, t)
	return int32(len(c.mod.ElemTypes) - 1)
}

func (c *compiler) builtinIndex(name string) int32 {
	if i, ok := c.biIndex[name]; ok {
		return int32(i)
	}
	c.biIndex[name] = len(c.mod.Builtins)
	c.mod.Builtins = append(c.mod.Builtins, name)
	return int32(len(c.mod.Builtins) - 1)
}

func (c *compiler) compileFunc(f *lang.FuncDecl) error {
	c.brkStack, c.cntStack = nil, nil
	if err := c.stmt(f.Body); err != nil {
		return err
	}
	// Implicit zero/void return at the end.
	if f.Ret.Equal(lang.Void) {
		c.emit(opReturnVoid, 0, 0, 0)
	} else {
		c.emit(opConst, c.constIndex(zeroOf(f.Ret)), 0, 0)
		c.emit(opReturn, 0, 0, 0)
	}
	return nil
}

func (c *compiler) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.Block:
		for _, inner := range st.Stmts {
			if err := c.stmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *lang.VarDecl:
		c.line(st.Pos())
		if st.Init == nil {
			c.emit(opConst, c.constIndex(zeroOf(st.DeclType)), 0, 0)
			c.emit(opStoreLocal, int32(st.Sym.Slot), 0, 0)
			return nil
		}
		if err := c.expr(st.Init); err != nil {
			return err
		}
		switch {
		case lang.IsScalar(st.DeclType):
			// Combined store+observe (the event fires after the store,
			// like the tree-walker).
			c.emit(opObsAssignLocal, int32(st.Sym.Slot), 0, int32(st.ID()))
		case lang.IsPointer(st.DeclType):
			c.emit(opObsPtrLocal, int32(st.Sym.Slot), 0, int32(st.ID()))
		default:
			c.emit(opStoreLocal, int32(st.Sym.Slot), 0, 0)
		}
		return nil
	case *lang.Assign:
		return c.assign(st)
	case *lang.If:
		c.line(st.Pos())
		if err := c.cond(st.Cond); err != nil {
			return err
		}
		jz := c.emit(opJumpIfZero, 0, 0, 0)
		if err := c.stmt(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			c.patch(jz, c.here())
			return nil
		}
		jend := c.emit(opJump, 0, 0, 0)
		c.patch(jz, c.here())
		if err := c.stmt(st.Else); err != nil {
			return err
		}
		c.patch(jend, c.here())
		return nil
	case *lang.While:
		c.line(st.Pos())
		top := c.here()
		if err := c.cond(st.Cond); err != nil {
			return err
		}
		jz := c.emit(opJumpIfZero, 0, 0, 0)
		c.pushLoop()
		if err := c.stmt(st.Body); err != nil {
			return err
		}
		c.emit(opJump, int32(top), 0, 0)
		brk, cont := c.popLoop()
		end := c.here()
		c.patch(jz, end)
		for _, at := range brk {
			c.patch(at, end)
		}
		for _, at := range cont {
			c.patch(at, top)
		}
		return nil
	case *lang.For:
		c.line(st.Pos())
		if st.Init != nil {
			if err := c.stmt(st.Init); err != nil {
				return err
			}
		}
		top := c.here()
		var jz int = -1
		if st.Cond != nil {
			if err := c.cond(st.Cond); err != nil {
				return err
			}
			jz = c.emit(opJumpIfZero, 0, 0, 0)
		}
		c.pushLoop()
		if err := c.stmt(st.Body); err != nil {
			return err
		}
		brk, cont := c.popLoop()
		postAt := c.here()
		if st.Post != nil {
			if err := c.stmt(st.Post); err != nil {
				return err
			}
		}
		c.emit(opJump, int32(top), 0, 0)
		end := c.here()
		if jz >= 0 {
			c.patch(jz, end)
		}
		for _, at := range brk {
			c.patch(at, end)
		}
		for _, at := range cont {
			c.patch(at, postAt)
		}
		return nil
	case *lang.Return:
		c.line(st.Pos())
		if st.Value == nil {
			c.emit(opReturnVoid, 0, 0, 0)
			return nil
		}
		if err := c.expr(st.Value); err != nil {
			return err
		}
		c.emit(opReturn, 0, 0, 0)
		return nil
	case *lang.Break:
		c.line(st.Pos())
		at := c.emit(opJump, 0, 0, 0)
		n := len(c.brkStack) - 1
		c.brkStack[n] = append(c.brkStack[n], at)
		return nil
	case *lang.Continue:
		c.line(st.Pos())
		at := c.emit(opJump, 0, 0, 0)
		n := len(c.cntStack) - 1
		c.cntStack[n] = append(c.cntStack[n], at)
		return nil
	case *lang.ExprStmt:
		c.line(st.Pos())
		if err := c.expr(st.E); err != nil {
			return err
		}
		c.emit(opPop, 0, 0, 0)
		return nil
	}
	return fmt.Errorf("vm: unknown statement %T", s)
}

func (c *compiler) pushLoop() {
	c.brkStack = append(c.brkStack, nil)
	c.cntStack = append(c.cntStack, nil)
}

func (c *compiler) popLoop() (brk, cont []int) {
	n := len(c.brkStack) - 1
	brk, cont = c.brkStack[n], c.cntStack[n]
	c.brkStack = c.brkStack[:n]
	c.cntStack = c.cntStack[:n]
	return brk, cont
}

// cond compiles a statement condition: evaluate, then fire the branch
// observer on the condition root, leaving the value on the stack.
func (c *compiler) cond(e lang.Expr) error {
	if err := c.expr(e); err != nil {
		return err
	}
	c.emit(opObsBranch, int32(e.ID()), 0, 0)
	return nil
}

func (c *compiler) assign(st *lang.Assign) error {
	c.line(st.Pos())
	scalar := lang.IsScalar(st.LHS.Type())
	switch lhs := st.LHS.(type) {
	case *lang.VarRef:
		if err := c.expr(st.Value); err != nil {
			return err
		}
		global := int32(0)
		if lhs.Sym.Kind == lang.SymGlobal {
			global = 1
		}
		switch {
		case scalar:
			c.emit(opObsAssignLocal, int32(lhs.Sym.Slot), global, int32(st.ID()))
		case lang.IsPointer(st.LHS.Type()):
			c.emit(opObsPtrLocal, int32(lhs.Sym.Slot), global, int32(st.ID()))
		case global == 1:
			c.emit(opStoreGlobal, int32(lhs.Sym.Slot), 0, 0)
		default:
			c.emit(opStoreLocal, int32(lhs.Sym.Slot), 0, 0)
		}
		return nil
	case *lang.Index, *lang.Field:
		if err := c.lvalueAddr(st.LHS); err != nil {
			return err
		}
		if err := c.expr(st.Value); err != nil {
			return err
		}
		obs := int32(0)
		switch {
		case scalar:
			obs = 1
		case lang.IsPointer(st.LHS.Type()):
			obs = 2
		}
		c.emit(opStoreHeapObs, int32(st.ID()), obs, 0)
		return nil
	}
	return fmt.Errorf("vm: bad assignment target %T", st.LHS)
}

// lvalueAddr compiles the address computation for an Index or Field
// lvalue, pushing an address value.
func (c *compiler) lvalueAddr(e lang.Expr) error {
	switch ex := e.(type) {
	case *lang.Index:
		if err := c.expr(ex.Base); err != nil {
			return err
		}
		if err := c.expr(ex.Idx); err != nil {
			return err
		}
		elem := lang.Int
		if pt, ok := ex.Base.Type().(*lang.PointerType); ok {
			elem = pt.Elem
		}
		c.emit(opIndexAddr, int32(lang.SizeOf(elem)), 0, int32(ex.ID()))
		return nil
	case *lang.Field:
		if ex.Arrow {
			if err := c.expr(ex.Base); err != nil {
				return err
			}
			c.emit(opFieldAddr, int32(ex.FieldIndex), 0, int32(ex.ID()))
			return nil
		}
		if err := c.lvalueAddr(ex.Base); err != nil {
			return err
		}
		c.emit(opAddrField, int32(ex.FieldIndex), 0, 0)
		return nil
	}
	return fmt.Errorf("vm: not an lvalue: %T", e)
}

func (c *compiler) expr(e lang.Expr) error {
	switch ex := e.(type) {
	case *lang.IntLit:
		c.emit(opConst, c.constIndex(IntVal(ex.Value)), 0, 0)
		return nil
	case *lang.StrLit:
		c.emit(opConst, c.constIndex(StrVal(ex.Value)), 0, 0)
		return nil
	case *lang.NullLit:
		c.emit(opConst, c.constIndex(Null), 0, 0)
		return nil
	case *lang.VarRef:
		if ex.Sym.Kind == lang.SymGlobal {
			c.emit(opLoadGlobal, int32(ex.Sym.Slot), 0, 0)
		} else {
			c.emit(opLoadLocal, int32(ex.Sym.Slot), 0, 0)
		}
		return nil
	case *lang.Binary:
		return c.binary(ex)
	case *lang.Unary:
		if err := c.expr(ex.E); err != nil {
			return err
		}
		if ex.Op == lang.OpNeg {
			c.emit(opNeg, 0, 0, 0)
		} else {
			c.emit(opNot, 0, 0, 0)
		}
		return nil
	case *lang.Call:
		for _, a := range ex.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.line(ex.Pos())
		if ex.Builtin != nil {
			c.emit(opCallBuiltin, c.builtinIndex(ex.Name), int32(len(ex.Args)), int32(ex.ID()))
		} else {
			c.emit(opCall, int32(c.fnIndex[ex.Name]), int32(len(ex.Args)), 0)
		}
		if ex.Type() != nil && ex.Type().Equal(lang.Int) {
			c.emit(opObsRet, int32(ex.ID()), 0, 0)
		}
		return nil
	case *lang.Index, *lang.Field:
		if err := c.lvalueAddr(e); err != nil {
			return err
		}
		c.emit(opLoadAddr, 0, 0, 0)
		return nil
	case *lang.NewArray:
		if err := c.expr(ex.Count); err != nil {
			return err
		}
		c.emit(opNewArray, c.typeIndex(ex.Elem), 0, 0)
		return nil
	case *lang.NewStruct:
		c.emit(opNewStruct, c.typeIndex(ex.Struct), 0, 0)
		return nil
	}
	return fmt.Errorf("vm: unknown expression %T", e)
}

func (c *compiler) binary(b *lang.Binary) error {
	switch b.Op {
	case lang.OpAnd:
		// left; ObsBranch(left); if zero -> push 0; else right != 0.
		if err := c.expr(b.L); err != nil {
			return err
		}
		c.emit(opObsBranch, int32(b.L.ID()), 0, 0)
		jz := c.emit(opJumpIfZero, 0, 0, 0)
		if err := c.expr(b.R); err != nil {
			return err
		}
		// Normalize right to 0/1: r != 0.
		c.emit(opConst, c.constIndex(IntVal(0)), 0, 0)
		c.emit(opEq, 0, 1, 0) // !=
		jend := c.emit(opJump, 0, 0, 0)
		c.patch(jz, c.here())
		c.emit(opConst, c.constIndex(IntVal(0)), 0, 0)
		c.patch(jend, c.here())
		return nil
	case lang.OpOr:
		if err := c.expr(b.L); err != nil {
			return err
		}
		c.emit(opObsBranch, int32(b.L.ID()), 0, 0)
		jnz := c.emit(opJumpIfNZero, 0, 0, 0)
		if err := c.expr(b.R); err != nil {
			return err
		}
		c.emit(opConst, c.constIndex(IntVal(0)), 0, 0)
		c.emit(opEq, 0, 1, 0)
		jend := c.emit(opJump, 0, 0, 0)
		c.patch(jnz, c.here())
		c.emit(opConst, c.constIndex(IntVal(1)), 0, 0)
		c.patch(jend, c.here())
		return nil
	}

	if err := c.expr(b.L); err != nil {
		return err
	}
	if err := c.expr(b.R); err != nil {
		return err
	}
	switch b.Op {
	case lang.OpAdd:
		c.emit(opAdd, 0, 0, 0)
	case lang.OpSub:
		c.emit(opSub, 0, 0, 0)
	case lang.OpMul:
		c.emit(opMul, 0, 0, 0)
	case lang.OpDiv:
		c.emit(opDiv, 0, 0, 0)
	case lang.OpMod:
		c.emit(opMod, 0, 0, 0)
	case lang.OpEq:
		c.emit(opEq, 0, 0, 0)
	case lang.OpNe:
		c.emit(opEq, 0, 1, 0)
	case lang.OpLt:
		c.emit(opLt, 0, 0, 0)
	case lang.OpLe:
		c.emit(opLe, 0, 0, 0)
	case lang.OpGt:
		c.emit(opGt, 0, 0, 0)
	case lang.OpGe:
		c.emit(opGe, 0, 0, 0)
	default:
		return fmt.Errorf("vm: unknown operator %s", b.Op)
	}
	return nil
}
