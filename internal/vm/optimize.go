package vm

import (
	"cbi/internal/interp"
	"cbi/internal/lang"
)

// CompileOptimized compiles prog and applies Optimize.
func CompileOptimized(prog *lang.Program) (*Module, error) {
	mod, err := Compile(prog)
	if err != nil {
		return nil, err
	}
	Optimize(mod)
	return mod, nil
}

// Optimize applies semantics-preserving bytecode optimizations to every
// function in the module, in place:
//
//   - constant folding: const/const arithmetic and comparisons are
//     evaluated at compile time when they cannot trap;
//   - jump threading: jumps whose target is another unconditional jump
//     go straight to the final destination;
//   - dead-code elision: instructions that can never be reached
//     (between an unconditional control transfer and the next jump
//     target) become nops.
//
// Observer events, traps, allocation order, and step-limit *outcomes*
// are unaffected: folding only touches trap-free constant arithmetic,
// and the engines' step counts were never comparable across backends
// anyway. The progen differential fuzz and the subject differential
// tests run against optimized modules, which is the correctness
// argument.
func Optimize(mod *Module) {
	for _, fn := range mod.Funcs {
		foldConstants(mod, fn)
		threadJumps(fn)
		elideDeadCode(fn)
	}
}

// foldConstants rewrites const/const binary operations into a single
// const instruction. Only trap-free foldings are performed: division
// and modulo by a constant zero are left for runtime so the trap still
// fires in program order.
func foldConstants(mod *Module, fn *Func) {
	code := fn.Code
	// jumpTargets marks instructions that are jump destinations; we
	// must not fold across them (the middle of a folded triple could
	// be a live jump target).
	targets := jumpTargetSet(code)

	for i := 0; i+2 < len(code); i++ {
		a, b, op := code[i], code[i+1], code[i+2]
		if a.Op != opConst || b.Op != opConst {
			continue
		}
		if targets[i+1] || targets[i+2] {
			continue
		}
		va, vb := mod.Consts[a.A], mod.Consts[b.A]
		folded, ok := foldBinary(op, va, vb)
		if !ok {
			continue
		}
		idx := constIndex(mod, folded)
		code[i] = Instr{Op: opConst, A: idx}
		code[i+1] = Instr{Op: opNop}
		code[i+2] = Instr{Op: opNop}
	}
}

// foldBinary evaluates op on two constant values when that cannot trap
// or change observable behaviour.
func foldBinary(in Instr, l, r Value) (Value, bool) {
	bothInt := l.Kind == KInt && r.Kind == KInt
	switch in.Op {
	case opAdd:
		if bothInt {
			return IntVal(l.Int + r.Int), true
		}
		if l.Kind == KStr && r.Kind == KStr {
			return StrVal(l.Str + r.Str), true
		}
	case opSub:
		if bothInt {
			return IntVal(l.Int - r.Int), true
		}
	case opMul:
		if bothInt {
			return IntVal(l.Int * r.Int), true
		}
	case opDiv:
		if bothInt && r.Int != 0 {
			return IntVal(interp.DivWrap(l.Int, r.Int)), true
		}
	case opMod:
		if bothInt && r.Int != 0 {
			return IntVal(interp.ModWrap(l.Int, r.Int)), true
		}
	case opEq:
		eq, ok := interp.ValuesEqual(l, r)
		if ok {
			if in.B == 1 {
				eq = !eq
			}
			return boolVal(eq), true
		}
	case opLt, opLe, opGt, opGe:
		if bothInt {
			return boolVal(intOrder(in.Op, l.Int, r.Int)), true
		}
		if l.Kind == KStr && r.Kind == KStr {
			return boolVal(strOrder(in.Op, l.Str, r.Str)), true
		}
	}
	return Value{}, false
}

func constIndex(mod *Module, v Value) int32 {
	for i, existing := range mod.Consts {
		if sameConst(existing, v) {
			return int32(i)
		}
	}
	mod.Consts = append(mod.Consts, v)
	return int32(len(mod.Consts) - 1)
}

// jumpTargetSet returns which instruction indices are jump targets.
func jumpTargetSet(code []Instr) map[int]bool {
	targets := map[int]bool{}
	for _, in := range code {
		switch in.Op {
		case opJump, opJumpIfZero, opJumpIfNZero:
			targets[int(in.A)] = true
		}
	}
	return targets
}

// threadJumps retargets jumps that land on unconditional jumps.
func threadJumps(fn *Func) {
	code := fn.Code
	final := func(t int) int {
		seen := map[int]bool{}
		for t < len(code) && !seen[t] {
			seen[t] = true
			// Skip nops at the landing point.
			u := t
			for u < len(code) && code[u].Op == opNop {
				u++
			}
			if u < len(code) && code[u].Op == opJump {
				t = int(code[u].A)
				continue
			}
			return u
		}
		return t
	}
	for i := range code {
		switch code[i].Op {
		case opJump, opJumpIfZero, opJumpIfNZero:
			code[i].A = int32(final(int(code[i].A)))
		}
	}
}

// elideDeadCode turns unreachable instructions into nops. Reachability
// is a simple forward scan: after an unconditional transfer (jump,
// return), instructions are dead until the next jump target.
func elideDeadCode(fn *Func) {
	code := fn.Code
	targets := jumpTargetSet(code)
	dead := false
	for i := range code {
		if targets[i] {
			dead = false
		}
		if dead {
			code[i] = Instr{Op: opNop}
			continue
		}
		switch code[i].Op {
		case opJump, opReturn, opReturnVoid:
			dead = true
		}
	}
}
