package vm

import (
	"strings"
	"testing"

	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/sampling"
	"cbi/internal/subjects"
)

func TestConstantFolding(t *testing.T) {
	_, mod := compileSrc(t, `int main() { return 2 + 3 * 4; }`)
	Optimize(mod)
	asm := Disasm(mod.Funcs[mod.Main])
	// 3 * 4 folds to 12, then 2 + 12 requires a second pass we don't
	// do — but at least one arithmetic op must be gone.
	if strings.Count(asm, "mul") != 0 {
		t.Errorf("multiplication not folded:\n%s", asm)
	}
	out := New(mod, nil).Run(interp.Input{})
	if out.ExitCode != 14 {
		t.Errorf("optimized exit = %d, want 14", out.ExitCode)
	}
}

func TestFoldingSkipsTrappingDivision(t *testing.T) {
	_, mod := compileSrc(t, `int main() { return 1 / 0; }`)
	Optimize(mod)
	out := New(mod, nil).Run(interp.Input{})
	if !out.Crashed || out.Trap != interp.TrapDivByZero {
		t.Errorf("optimized division by zero: %v %s", out.Crashed, out.Trap)
	}
}

func TestDivWrapSemantics(t *testing.T) {
	// MinInt64 / -1 and % -1 must not panic the host process and must
	// agree across engines (wrap semantics).
	src := `
int main() {
  int big = 0 - 9223372036854775807 - 1;
  int d = big / -1;
  int m = big % -1;
  output(d);
  output(m);
  return 0;
}`
	prog, mod := compileSrc(t, src)
	a := interp.Run(prog, interp.Input{}, nil)
	b := New(mod, nil).Run(interp.Input{})
	if a.Crashed || b.Crashed {
		t.Fatalf("wrap semantics crashed: tree=%v vm=%v", a.Trap, b.Trap)
	}
	if strings.Join(a.Output, ",") != strings.Join(b.Output, ",") {
		t.Fatalf("outputs differ: %v vs %v", a.Output, b.Output)
	}
	if a.Output[0] != "-9223372036854775808" || a.Output[1] != "0" {
		t.Errorf("wrap values: %v", a.Output)
	}
}

func TestDeadCodeElision(t *testing.T) {
	_, mod := compileSrc(t, `
int main() {
  return 1;
  output("unreachable");
  return 2;
}`)
	Optimize(mod)
	asm := Disasm(mod.Funcs[mod.Main])
	if strings.Contains(asm, "callbuiltin") {
		t.Errorf("unreachable call not elided:\n%s", asm)
	}
	out := New(mod, nil).Run(interp.Input{})
	if out.ExitCode != 1 || len(out.Output) != 0 {
		t.Errorf("optimized run: exit=%d output=%v", out.ExitCode, out.Output)
	}
}

// TestOptimizedDifferentialSubjects: the optimizer must preserve
// outcomes AND instrumentation reports on every subject.
func TestOptimizedDifferentialSubjects(t *testing.T) {
	const runs = 250
	for _, s := range subjects.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Program(true)
			plan := instrument.BuildPlan(prog)

			rtPlain := instrument.NewRuntime(plan, sampling.Always{})
			plain := New(MustCompile(prog), rtPlain)

			optMod, err := CompileOptimized(prog)
			if err != nil {
				t.Fatal(err)
			}
			rtOpt := instrument.NewRuntime(plan, sampling.Always{})
			opt := New(optMod, rtOpt)

			for i := int64(0); i < runs; i++ {
				input := s.Input(i)
				rtPlain.BeginRun(i + 1)
				a := plain.Run(input)
				repA := rtPlain.Snapshot(a.Crashed)
				rtOpt.BeginRun(i + 1)
				b := opt.Run(input)
				repB := rtOpt.Snapshot(b.Crashed)

				if !outcomesAgree(a, b) {
					t.Fatalf("input %d: optimizer changed outcome: %s/%d vs %s/%d",
						i, a.Trap, a.ExitCode, b.Trap, b.ExitCode)
				}
				if len(repA.TruePreds) != len(repB.TruePreds) {
					t.Fatalf("input %d: optimizer changed report: %d vs %d preds",
						i, len(repA.TruePreds), len(repB.TruePreds))
				}
				for j := range repA.TruePreds {
					if repA.TruePreds[j] != repB.TruePreds[j] {
						t.Fatalf("input %d: report pred %d differs", i, j)
					}
				}
			}
		})
	}
}

func TestOptimizeShrinksLiveCode(t *testing.T) {
	prog := subjects.Moss().Program(true)
	plain := MustCompile(prog)
	opt, err := CompileOptimized(prog)
	if err != nil {
		t.Fatal(err)
	}
	live := func(m *Module) int {
		n := 0
		for _, fn := range m.Funcs {
			for _, in := range fn.Code {
				if in.Op != opNop {
					n++
				}
			}
		}
		return n
	}
	lp, lo := live(plain), live(opt)
	if lo >= lp {
		t.Errorf("optimizer removed nothing: %d -> %d live instructions", lp, lo)
	}
	t.Logf("live instructions: %d -> %d", lp, lo)
}
