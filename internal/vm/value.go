package vm

import (
	"cbi/internal/interp"
	"cbi/internal/lang"
)

// The VM shares the interpreter's value model, heap, traps, and
// builtins through interp.State, so the two engines cannot drift apart
// semantically.

// Value is the runtime value type shared with the tree-walker.
type Value = interp.Value

// Re-exported constructors for convenience inside this package.
var (
	IntVal = interp.IntVal
	StrVal = interp.StrVal
	Null   = interp.Null
)

// Value kind shorthands.
const (
	KInt = interp.KInt
	KStr = interp.KStr
	KPtr = interp.KPtr
)

func zeroOf(t lang.Type) Value {
	switch {
	case t.Equal(lang.String):
		return StrVal("")
	case lang.IsPointer(t):
		return Null
	default:
		return IntVal(0)
	}
}
