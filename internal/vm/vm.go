package vm

import (
	"strings"

	"cbi/internal/interp"
	"cbi/internal/lang"
)

// VM executes a compiled Module. It shares interp.State, so the heap
// model, traps, builtins and RNG streams are byte-identical to the
// tree-walking interpreter's.
type VM struct {
	mod    *Module
	obs    interp.Observer
	st     *interp.State
	frames []vframe
	stack  []Value
}

type vframe struct {
	fn        *Func
	locals    []Value
	pc        int
	line      int
	stackBase int
}

// New creates a VM for the module. obs may be nil.
func New(mod *Module, obs interp.Observer) *VM {
	return &VM{mod: mod, obs: obs, st: interp.NewState()}
}

// SetLimits overrides resource limits; zero fields keep defaults.
func (vm *VM) SetLimits(l interp.Limits) {
	if l.Steps > 0 {
		vm.st.Limits.Steps = l.Steps
	}
	if l.Frames > 0 {
		vm.st.Limits.Frames = l.Frames
	}
	if l.HeapSlots > 0 {
		vm.st.Limits.HeapSlots = l.HeapSlots
	}
}

// SetMemModel overrides the heap layout model.
func (vm *VM) SetMemModel(m interp.MemModel) { vm.st.Mem = m }

// Run executes one run of the compiled program.
func (vm *VM) Run(input interp.Input) (result *interp.Outcome) {
	vm.st.Reset(vm.mod.Prog, input)
	vm.frames = vm.frames[:0]
	vm.stack = vm.stack[:0]

	defer func() {
		if r := recover(); r != nil {
			vm.st.RecoverTrap(r, vm.captureStack)
			vm.frames = vm.frames[:0]
			result = vm.st.Outcome()
		}
	}()

	ret := vm.exec(vm.mod.Main, nil)
	out := vm.st.Outcome()
	out.ExitCode = ret.Int
	out.Steps = vm.st.Steps()
	return out
}

func (vm *VM) captureStack() []interp.StackEntry {
	out := make([]interp.StackEntry, 0, len(vm.frames))
	for i := len(vm.frames) - 1; i >= 0; i-- {
		f := &vm.frames[i]
		out = append(out, interp.StackEntry{Func: f.fn.Name, Line: f.line})
	}
	return out
}

func (vm *VM) push(v Value) { vm.stack = append(vm.stack, v) }

func (vm *VM) pop() Value {
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v
}

func (vm *VM) top() Value { return vm.stack[len(vm.stack)-1] }

func (vm *VM) pushFrame(fnIdx int, args []Value) {
	if len(vm.frames) >= vm.st.Limits.Frames {
		vm.st.Trap(interp.TrapStackOverflow, "call depth exceeds %d", vm.st.Limits.Frames)
	}
	fn := vm.mod.Funcs[fnIdx]
	locals := make([]Value, fn.NLocals)
	copy(locals, args)
	for i := len(args); i < fn.NLocals; i++ {
		locals[i] = IntVal(0)
	}
	vm.frames = append(vm.frames, vframe{
		fn:        fn,
		locals:    locals,
		line:      fn.Line,
		stackBase: len(vm.stack),
	})
}

// symReader reads int variables of the current frame/globals for the
// scalar-pairs observer.
func (vm *VM) symReader() interp.SymReader {
	f := &vm.frames[len(vm.frames)-1]
	return func(sym *lang.Symbol) (int64, bool) {
		var v Value
		if sym.Kind == lang.SymGlobal {
			v = vm.st.Globals[sym.Slot]
		} else {
			v = f.locals[sym.Slot]
		}
		if v.Kind != KInt {
			return 0, false
		}
		return v.Int, true
	}
}

func (vm *VM) wantInt(v Value, what string) int64 {
	if v.Kind != KInt {
		vm.st.Trap(interp.TrapTypeConfusion, "%s", what)
	}
	return v.Int
}

// exec runs the function at fnIdx to completion and returns its result.
func (vm *VM) exec(fnIdx int, args []Value) Value {
	vm.pushFrame(fnIdx, args)
	baseDepth := len(vm.frames)

	for {
		f := &vm.frames[len(vm.frames)-1]
		in := f.fn.Code[f.pc]
		f.pc++
		if in.Op != opLine {
			vm.st.Step()
		}

		switch in.Op {
		case opNop:
		case opLine:
			f.line = int(in.A)
		case opConst:
			vm.push(vm.mod.Consts[in.A])
		case opPop:
			vm.pop()
		case opDup:
			vm.push(vm.top())
		case opLoadLocal:
			vm.push(f.locals[in.A])
		case opStoreLocal:
			f.locals[in.A] = vm.pop()
		case opLoadGlobal:
			vm.push(vm.st.Globals[in.A])
		case opStoreGlobal:
			vm.st.Globals[in.A] = vm.pop()

		case opAdd:
			r, l := vm.pop(), vm.pop()
			if l.Kind == KStr && r.Kind == KStr {
				vm.push(StrVal(l.Str + r.Str))
				break
			}
			if l.Kind != KInt || r.Kind != KInt {
				vm.st.Trap(interp.TrapTypeConfusion, "arithmetic on %s and %s", l, r)
			}
			vm.push(IntVal(l.Int + r.Int))
		case opSub, opMul, opDiv, opMod:
			r, l := vm.pop(), vm.pop()
			if l.Kind != KInt || r.Kind != KInt {
				vm.st.Trap(interp.TrapTypeConfusion, "arithmetic on %s and %s", l, r)
			}
			switch in.Op {
			case opSub:
				vm.push(IntVal(l.Int - r.Int))
			case opMul:
				vm.push(IntVal(l.Int * r.Int))
			case opDiv:
				if r.Int == 0 {
					vm.st.Trap(interp.TrapDivByZero, "division by zero")
				}
				vm.push(IntVal(interp.DivWrap(l.Int, r.Int)))
			case opMod:
				if r.Int == 0 {
					vm.st.Trap(interp.TrapDivByZero, "modulo by zero")
				}
				vm.push(IntVal(interp.ModWrap(l.Int, r.Int)))
			}
		case opEq:
			r, l := vm.pop(), vm.pop()
			eq, ok := interp.ValuesEqual(l, r)
			if !ok {
				vm.st.Trap(interp.TrapTypeConfusion, "comparing %s with %s", l, r)
			}
			if in.B == 1 {
				eq = !eq
			}
			vm.push(boolVal(eq))
		case opLt, opLe, opGt, opGe:
			r, l := vm.pop(), vm.pop()
			if l.Kind == KStr && r.Kind == KStr {
				vm.push(boolVal(strOrder(in.Op, l.Str, r.Str)))
				break
			}
			if l.Kind != KInt || r.Kind != KInt {
				vm.st.Trap(interp.TrapTypeConfusion, "ordering %s with %s", l, r)
			}
			vm.push(boolVal(intOrder(in.Op, l.Int, r.Int)))
		case opNeg:
			v := vm.wantInt(vm.pop(), "operand of - must be an integer")
			vm.push(IntVal(-v))
		case opNot:
			v := vm.wantInt(vm.pop(), "operand of ! must be an integer")
			vm.push(boolVal(v == 0))

		case opJump:
			f.pc = int(in.A)
		case opJumpIfZero:
			v := vm.wantInt(vm.pop(), "condition is not an integer")
			if v == 0 {
				f.pc = int(in.A)
			}
		case opJumpIfNZero:
			v := vm.wantInt(vm.pop(), "condition is not an integer")
			if v != 0 {
				f.pc = int(in.A)
			}

		case opNewArray:
			n := vm.wantInt(vm.pop(), "allocation count is not an integer")
			vm.push(vm.st.Allocate(int(n), vm.mod.ElemTypes[in.A]))
		case opNewStruct:
			vm.push(vm.st.Allocate(1, vm.mod.ElemTypes[in.A]))
		case opIndexAddr:
			idx := vm.wantInt(vm.pop(), "expected integer index")
			base := vm.pop()
			if base.Kind != KPtr {
				vm.st.Trap(interp.TrapTypeConfusion, "indexing a non-pointer value")
			}
			if vm.obs != nil {
				vm.obs.PtrDeref(lang.NodeID(in.C), base.IsNull())
			}
			if base.IsNull() {
				vm.st.Trap(interp.TrapNullDeref, "indexing null pointer")
			}
			vm.push(interp.PtrVal(base.Block, base.Off+int(idx)*int(in.A)))
		case opFieldAddr:
			base := vm.pop()
			if base.Kind != KPtr {
				vm.st.Trap(interp.TrapTypeConfusion, "-> on a non-pointer value")
			}
			if vm.obs != nil {
				vm.obs.PtrDeref(lang.NodeID(in.C), base.IsNull())
			}
			if base.IsNull() {
				vm.st.Trap(interp.TrapNullDeref, "-> on null pointer")
			}
			vm.push(interp.PtrVal(base.Block, base.Off+int(in.A)))
		case opAddrField:
			addr := vm.pop()
			vm.push(interp.PtrVal(addr.Block, addr.Off+int(in.A)))
		case opLoadAddr:
			addr := vm.pop()
			v, ok := vm.st.HeapLoad(addr.Block, addr.Off)
			if !ok {
				vm.st.Trap(interp.TrapOutOfBounds, "read from unmapped memory")
			}
			vm.push(v)
		case opStoreAddr:
			v := vm.pop()
			addr := vm.pop()
			if !vm.st.HeapStore(addr.Block, addr.Off, v) {
				vm.st.Trap(interp.TrapOutOfBounds, "write to unmapped memory")
			}
		case opStoreHeapObs:
			v := vm.pop()
			addr := vm.pop()
			old, oldMapped := vm.st.HeapLoad(addr.Block, addr.Off)
			if !vm.st.HeapStore(addr.Block, addr.Off, v) {
				vm.st.Trap(interp.TrapOutOfBounds, "write to unmapped memory")
			}
			if vm.obs != nil {
				switch {
				case in.B == 1 && v.Kind == KInt:
					vm.obs.ScalarAssign(lang.NodeID(in.A), v.Int, old.Int, oldMapped && old.Kind == KInt, vm.symReader())
				case in.B == 2 && v.Kind == KPtr:
					vm.obs.PtrAssign(lang.NodeID(in.A), v.IsNull())
				}
			}

		case opCall:
			n := int(in.B)
			callArgs := make([]Value, n)
			copy(callArgs, vm.stack[len(vm.stack)-n:])
			vm.stack = vm.stack[:len(vm.stack)-n]
			vm.pushFrame(int(in.A), callArgs)
		case opCallBuiltin:
			n := int(in.B)
			callArgs := make([]Value, n)
			copy(callArgs, vm.stack[len(vm.stack)-n:])
			vm.stack = vm.stack[:len(vm.stack)-n]
			vm.push(vm.st.CallBuiltin(vm.mod.Builtins[in.A], callArgs))
		case opReturn:
			ret := vm.pop()
			vm.stack = vm.stack[:f.stackBase]
			vm.frames = vm.frames[:len(vm.frames)-1]
			if len(vm.frames) < baseDepth {
				return ret
			}
			vm.push(ret)
		case opReturnVoid:
			vm.stack = vm.stack[:f.stackBase]
			vm.frames = vm.frames[:len(vm.frames)-1]
			if len(vm.frames) < baseDepth {
				return Value{}
			}
			vm.push(Value{})

		case opObsBranch:
			v := vm.wantInt(vm.top(), "condition is not an integer")
			if vm.obs != nil {
				vm.obs.Branch(lang.NodeID(in.A), v != 0)
			}
		case opObsRet:
			if vm.obs != nil && vm.top().Kind == KInt {
				vm.obs.IntReturn(lang.NodeID(in.A), vm.top().Int)
			}
		case opObsPtrLocal:
			v := vm.pop()
			if in.B == 1 {
				vm.st.Globals[in.A] = v
			} else {
				f.locals[in.A] = v
			}
			if vm.obs != nil && v.Kind == KPtr {
				vm.obs.PtrAssign(lang.NodeID(in.C), v.IsNull())
			}
		case opObsAssignLocal:
			v := vm.pop()
			var old Value
			if in.B == 1 {
				old = vm.st.Globals[in.A]
				vm.st.Globals[in.A] = v
			} else {
				old = f.locals[in.A]
				f.locals[in.A] = v
			}
			if vm.obs != nil && v.Kind == KInt {
				vm.obs.ScalarAssign(lang.NodeID(in.C), v.Int, old.Int, old.Kind == KInt, vm.symReader())
			}

		default:
			vm.st.Trap(interp.TrapTypeConfusion, "internal: unknown opcode %s", in.Op)
		}
	}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func intOrder(op Op, l, r int64) bool {
	switch op {
	case opLt:
		return l < r
	case opLe:
		return l <= r
	case opGt:
		return l > r
	default:
		return l >= r
	}
}

func strOrder(op Op, l, r string) bool {
	switch op {
	case opLt:
		return l < r
	case opLe:
		return l <= r
	case opGt:
		return l > r
	default:
		return l >= r
	}
}

// Disasm renders a compiled function for debugging.
func Disasm(fn *Func) string {
	var sb strings.Builder
	for i, in := range fn.Code {
		sb.WriteString(padInt(i, 4))
		sb.WriteByte(' ')
		sb.WriteString(in.Op.String())
		sb.WriteByte(' ')
		sb.WriteString(padInt(int(in.A), 0))
		if in.B != 0 || in.C != 0 {
			sb.WriteByte(' ')
			sb.WriteString(padInt(int(in.B), 0))
			sb.WriteByte(' ')
			sb.WriteString(padInt(int(in.C), 0))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func padInt(v, width int) string {
	s := ""
	neg := v < 0
	if neg {
		v = -v
	}
	if v == 0 {
		s = "0"
	}
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	if neg {
		s = "-" + s
	}
	for len(s) < width {
		s = " " + s
	}
	return s
}
