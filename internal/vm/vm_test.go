package vm

import (
	"strings"
	"testing"

	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/lang"
	"cbi/internal/sampling"
	"cbi/internal/subjects"
)

func compileSrc(t *testing.T, src string) (*lang.Program, *Module) {
	t.Helper()
	prog, err := lang.Parse("test.mc", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := lang.Resolve(prog); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	mod, err := Compile(prog)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog, mod
}

func runVM(t *testing.T, src string, input interp.Input) *interp.Outcome {
	t.Helper()
	_, mod := compileSrc(t, src)
	return New(mod, nil).Run(input)
}

func TestVMBasics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"arith", `int main() { return (1 + 2 * 3 - 4 / 2) % 5; }`, 0},
		{"loops", `int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } if (i > 7) { break; } s = s + i; } return s; }`, 16},
		{"while", `int main() { int i = 0; while (i < 100) { i = i + 7; } return i; }`, 105},
		{"fib", `int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { return fib(15); }`, 610},
		{"shortcircuit", `int g = 0; int bump() { g = g + 1; return 1; } int main() { int a = 0 && bump(); int b = 1 || bump(); int c = 1 && bump(); return g * 10 + a + b + c; }`, 12},
		{"structs", `struct P { int x; int y; } int main() { P* a = new P[3]; for (int i = 0; i < 3; i = i + 1) { a[i].x = i; a[i].y = i * i; } P* s = new P; s->x = 100; int r = s->x; for (int i = 0; i < 3; i = i + 1) { r = r + a[i].x + a[i].y; } return r; }`, 108},
		{"list", `struct N { int v; N* next; } int main() { N* h = null; for (int i = 1; i <= 5; i = i + 1) { N* n = new N; n->v = i; n->next = h; h = n; } int s = 0; N* p = h; while (p != null) { s = s + p->v; p = p->next; } return s; }`, 15},
		{"strings", `int main() { string s = "ab" + "cd"; if (s == "abcd" && strlen(s) == 4 && "a" < "b") { return 7; } return 0; }`, 7},
		{"voidfn", `void f() { output("x"); } int main() { f(); return 3; }`, 3},
		{"globals", `int g = 40; string n = "xy"; int main() { g = g + strlen(n); return g; }`, 42},
		{"falloff", `int f() { int x = 1; } int main() { return f(); }`, 0},
		{"unary", `int main() { return -(3 - 5) + !0 + !7; }`, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runVM(t, tc.src, interp.Input{})
			if out.Crashed {
				t.Fatalf("crashed: %s %s (stack %v)", out.Trap, out.Msg, out.Stack)
			}
			if out.ExitCode != tc.want {
				t.Errorf("exit = %d, want %d", out.ExitCode, tc.want)
			}
		})
	}
}

func TestVMTraps(t *testing.T) {
	cases := []struct {
		name string
		src  string
		trap interp.TrapKind
	}{
		{"null index", `int main() { int* p = null; return p[0]; }`, interp.TrapNullDeref},
		{"null arrow", `struct S { int v; } int main() { S* p = null; return p->v; }`, interp.TrapNullDeref},
		{"div zero", `int main() { int z = 0; return 1 / z; }`, interp.TrapDivByZero},
		{"fail", `int main() { fail("boom"); return 0; }`, interp.TrapExplicitFail},
		{"overflowing recursion", `int f(int n) { return f(n + 1); } int main() { return f(0); }`, interp.TrapStackOverflow},
		{"steps", `int main() { while (1) { } return 0; }`, interp.TrapStepLimit},
		{"neg alloc", `int main() { int n = -5; int* p = new int[n]; return p[0]; }`, interp.TrapBadAlloc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runVM(t, tc.src, interp.Input{})
			if !out.Crashed {
				t.Fatalf("did not crash (exit %d)", out.ExitCode)
			}
			if out.Trap != tc.trap {
				t.Errorf("trap = %s, want %s", out.Trap, tc.trap)
			}
			if len(out.Stack) == 0 {
				t.Error("no stack trace")
			}
		})
	}
}

func TestVMStackTrace(t *testing.T) {
	out := runVM(t, `
int inner() { int* p = null; return p[2]; }
int middle() { return inner(); }
int main() { return middle(); }`, interp.Input{})
	if !out.Crashed {
		t.Fatal("expected crash")
	}
	if sig := out.StackSignature(); sig != "inner<middle<main" {
		t.Errorf("signature = %q", sig)
	}
}

// outcomesAgree compares engine outcomes on the observable dimensions
// that must match exactly (step counts and line numbers may differ by
// engine).
func outcomesAgree(a, b *interp.Outcome) bool {
	if a.Crashed != b.Crashed || a.Trap != b.Trap {
		return false
	}
	if !a.Crashed && a.ExitCode != b.ExitCode {
		return false
	}
	if a.StackSignature() != b.StackSignature() {
		return false
	}
	if strings.Join(a.Output, "\n") != strings.Join(b.Output, "\n") {
		return false
	}
	if len(a.BugsObserved) != len(b.BugsObserved) {
		return false
	}
	for i := range a.BugsObserved {
		if a.BugsObserved[i] != b.BugsObserved[i] {
			return false
		}
	}
	return true
}

// TestDifferentialSubjects runs every built-in subject on both engines
// over many inputs and requires identical outcomes — crash/no-crash,
// trap kind, stack signature, outputs, exit codes, and ground truth.
// This is the semantic-equivalence guarantee for the compiled backend.
func TestDifferentialSubjects(t *testing.T) {
	const runsPerSubject = 600
	for _, s := range subjects.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Program(true)
			tree := interp.New(prog, nil)
			machine := New(MustCompile(prog), nil)
			for i := int64(0); i < runsPerSubject; i++ {
				input := s.Input(i)
				a := tree.Run(input)
				b := machine.Run(input)
				if !outcomesAgree(a, b) {
					t.Fatalf("input %d diverges:\n tree: crash=%v trap=%s exit=%d sig=%q bugs=%v out=%d lines\n   vm: crash=%v trap=%s exit=%d sig=%q bugs=%v out=%d lines",
						i,
						a.Crashed, a.Trap, a.ExitCode, a.StackSignature(), a.BugsObserved, len(a.Output),
						b.Crashed, b.Trap, b.ExitCode, b.StackSignature(), b.BugsObserved, len(b.Output))
				}
			}
		})
	}
}

// TestDifferentialObserverEvents runs both engines with full-observation
// instrumentation runtimes and requires identical feedback reports —
// i.e. the engines agree not just on outcomes but on every predicate
// observation.
func TestDifferentialObserverEvents(t *testing.T) {
	const runs = 150
	for _, name := range []string{"ccrypt", "bc", "exif", "rhythmbox"} {
		s := subjects.ByName(name)
		t.Run(name, func(t *testing.T) {
			prog := s.Program(true)
			plan := instrument.BuildPlan(prog)

			rtTree := instrument.NewRuntime(plan, sampling.Always{})
			tree := interp.New(prog, rtTree)
			rtVM := instrument.NewRuntime(plan, sampling.Always{})
			machine := New(MustCompile(prog), rtVM)

			for i := int64(0); i < runs; i++ {
				input := s.Input(i)
				rtTree.BeginRun(i + 1)
				a := tree.Run(input)
				repA := rtTree.Snapshot(a.Crashed)
				rtVM.BeginRun(i + 1)
				b := machine.Run(input)
				repB := rtVM.Snapshot(b.Crashed)

				if len(repA.TruePreds) != len(repB.TruePreds) || len(repA.ObservedSites) != len(repB.ObservedSites) {
					t.Fatalf("input %d: report shape differs: tree %d/%d preds/sites, vm %d/%d",
						i, len(repA.TruePreds), len(repA.ObservedSites), len(repB.TruePreds), len(repB.ObservedSites))
				}
				for j := range repA.TruePreds {
					if repA.TruePreds[j] != repB.TruePreds[j] {
						p := plan.Preds[repA.TruePreds[j]]
						q := plan.Preds[repB.TruePreds[j]]
						t.Fatalf("input %d: pred lists differ at %d: tree %q vs vm %q", i, j, p.Text, q.Text)
					}
				}
				for j := range repA.ObservedSites {
					if repA.ObservedSites[j] != repB.ObservedSites[j] {
						t.Fatalf("input %d: site lists differ at %d", i, j)
					}
				}
			}
		})
	}
}

// TestDifferentialSampledEvents checks agreement under sparse sampling:
// since both engines produce the same event sequence and the sampler is
// seeded per run, the sampled reports must match too.
func TestDifferentialSampledEvents(t *testing.T) {
	s := subjects.ByName("bc")
	prog := s.Program(true)
	plan := instrument.BuildPlan(prog)
	rtTree := instrument.NewRuntime(plan, sampling.NewUniform(0.05))
	tree := interp.New(prog, rtTree)
	rtVM := instrument.NewRuntime(plan, sampling.NewUniform(0.05))
	machine := New(MustCompile(prog), rtVM)

	for i := int64(0); i < 300; i++ {
		input := s.Input(i)
		rtTree.BeginRun(i + 1)
		tree.Run(input)
		repA := rtTree.Snapshot(false)
		rtVM.BeginRun(i + 1)
		machine.Run(input)
		repB := rtVM.Snapshot(false)
		if len(repA.TruePreds) != len(repB.TruePreds) {
			t.Fatalf("input %d: sampled pred counts differ: %d vs %d", i, len(repA.TruePreds), len(repB.TruePreds))
		}
		for j := range repA.TruePreds {
			if repA.TruePreds[j] != repB.TruePreds[j] {
				t.Fatalf("input %d: sampled pred lists differ at %d", i, j)
			}
		}
	}
}

func TestVMDeterminism(t *testing.T) {
	s := subjects.ByName("moss")
	machine := New(MustCompile(s.Program(true)), nil)
	a := machine.Run(s.Input(7))
	b := machine.Run(s.Input(7))
	if !outcomesAgree(a, b) {
		t.Error("same input diverged across runs")
	}
}

func TestCompileErrors(t *testing.T) {
	prog, err := lang.Parse("t", `int f() { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	// Unresolved/mainless program: Compile must refuse gracefully.
	if _, err := Compile(prog); err == nil {
		t.Error("Compile accepted a program without main")
	}
}

func TestDisasm(t *testing.T) {
	_, mod := compileSrc(t, `int main() { int x = 2 + 3; return x; }`)
	asm := Disasm(mod.Funcs[mod.Main])
	for _, want := range []string{"const", "add", "return"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestVMLimits(t *testing.T) {
	_, mod := compileSrc(t, `int main() { while (1) { int* p = new int[100]; p[0] = 1; } return 0; }`)
	machine := New(mod, nil)
	machine.SetLimits(interp.Limits{HeapSlots: 5000, Steps: 10_000_000})
	out := machine.Run(interp.Input{})
	if !out.Crashed || out.Trap != interp.TrapOutOfMemory {
		t.Errorf("got %v/%s, want OOM", out.Crashed, out.Trap)
	}
}
