// Package thermo renders the paper's "bug thermometer" visualization
// (§3.3): a bar whose length is logarithmic in the number of runs in
// which the predicate was observed true, divided into bands —
//
//	black:      Context(P)
//	dark gray:  lower bound of Increase(P) at 95% confidence
//	light gray: the confidence interval width
//	white:      the remainder, dominated by S(P) for non-deterministic
//	            predicates
//
// Both a text rendering (for terminal tables) and an HTML rendering
// (for the interactive report, like the paper's web UI) are provided.
package thermo

import (
	"fmt"
	"math"
	"strings"

	"cbi/internal/core"
)

// Thermometer is a computed thermometer: band fractions plus the
// log-scaled length.
type Thermometer struct {
	// Len01 is the relative length in (0, 1]: log-scaled observation
	// count relative to MaxObs.
	Len01 float64
	// Black, Dark, Light, White are band fractions summing to 1.
	Black, Dark, Light, White float64
	// Obs is F(P) + S(P), the number of runs where P was true.
	Obs int
}

// Compute builds a thermometer for one predicate given its stats and
// scores, with maxObs the largest observation count in the table
// (normalizes lengths).
func Compute(st core.Stats, sc core.Scores, maxObs int) Thermometer {
	obs := st.F + st.S
	th := Thermometer{Obs: obs}
	if obs <= 0 {
		return th
	}
	if maxObs < obs {
		maxObs = obs
	}
	th.Len01 = math.Log1p(float64(obs)) / math.Log1p(float64(maxObs))

	ctx := clamp01(sc.Context)
	incLow := sc.Increase - sc.IncreaseCI
	if math.IsNaN(incLow) || incLow < 0 {
		incLow = 0
	}
	incHigh := sc.Increase + sc.IncreaseCI
	if math.IsNaN(incHigh) {
		incHigh = incLow
	}
	// Bands cannot overflow the bar.
	if ctx+incLow > 1 {
		incLow = 1 - ctx
	}
	ciBand := incHigh - incLow
	if ciBand < 0 {
		ciBand = 0
	}
	if ctx+incLow+ciBand > 1 {
		ciBand = 1 - ctx - incLow
	}
	th.Black = ctx
	th.Dark = incLow
	th.Light = ciBand
	th.White = 1 - ctx - incLow - ciBand
	if th.White < 0 {
		th.White = 0
	}
	return th
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Text renders the thermometer as an ASCII bar of at most width cells:
//
//	'#' black (Context), '+' dark gray (Increase lower bound),
//	'-' light gray (CI), '.' white (successful-run mass).
func (th Thermometer) Text(width int) string {
	if width <= 0 {
		width = 20
	}
	n := int(math.Round(th.Len01 * float64(width)))
	if th.Obs > 0 && n < 1 {
		n = 1
	}
	if n == 0 {
		return "[" + strings.Repeat(" ", width) + "]"
	}
	black := int(math.Round(th.Black * float64(n)))
	dark := int(math.Round(th.Dark * float64(n)))
	light := int(math.Round(th.Light * float64(n)))
	for black+dark+light > n {
		switch {
		case light > 0:
			light--
		case dark > 0:
			dark--
		default:
			black--
		}
	}
	white := n - black - dark - light
	var sb strings.Builder
	sb.WriteByte('[')
	sb.WriteString(strings.Repeat("#", black))
	sb.WriteString(strings.Repeat("+", dark))
	sb.WriteString(strings.Repeat("-", light))
	sb.WriteString(strings.Repeat(".", white))
	sb.WriteString(strings.Repeat(" ", width-n))
	sb.WriteByte(']')
	return sb.String()
}

// HTML renders the thermometer as a fixed-height div with proportional
// colored bands (black, red, pink, white), like the paper's figures.
func (th Thermometer) HTML(widthPx int) string {
	if widthPx <= 0 {
		widthPx = 160
	}
	w := int(th.Len01 * float64(widthPx))
	if th.Obs > 0 && w < 2 {
		w = 2
	}
	band := func(frac float64, color string) string {
		px := int(frac * float64(w))
		if px <= 0 {
			return ""
		}
		return fmt.Sprintf(`<span style="display:inline-block;height:12px;width:%dpx;background:%s"></span>`, px, color)
	}
	return fmt.Sprintf(`<span class="thermo" style="display:inline-block;width:%dpx;border:1px solid #999">%s%s%s%s</span>`,
		widthPx,
		band(th.Black, "#000"),
		band(th.Dark, "#c00"),
		band(th.Light, "#f9c"),
		band(th.White, "#fff"))
}
