package thermo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cbi/internal/core"
)

func mkScores(st core.Stats, numF int) core.Scores { return core.ComputeScores(st, numF) }

func TestComputeBandsSumToOne(t *testing.T) {
	st := core.Stats{F: 100, S: 50, Fobs: 120, Sobs: 900}
	th := Compute(st, mkScores(st, 1000), 1000)
	sum := th.Black + th.Dark + th.Light + th.White
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("bands sum to %v", sum)
	}
	if th.Len01 <= 0 || th.Len01 > 1 {
		t.Errorf("Len01 = %v", th.Len01)
	}
}

func TestComputeDeterministicPredictorMostlyDark(t *testing.T) {
	// A deterministic predictor (S=0, strong Increase) should be
	// dominated by the dark band, like Table 1(b)'s thermometers.
	st := core.Stats{F: 500, S: 0, Fobs: 510, Sobs: 4000}
	th := Compute(st, mkScores(st, 1000), 1000)
	if th.Dark < 0.6 {
		t.Errorf("dark band = %v, want dominant", th.Dark)
	}
	if th.White > 0.2 {
		t.Errorf("white band = %v for deterministic predictor", th.White)
	}
}

func TestComputeNondeterministicPredictorMostlyWhite(t *testing.T) {
	// True in many successful runs: Failure barely above Context.
	st := core.Stats{F: 400, S: 3600, Fobs: 500, Sobs: 4800}
	th := Compute(st, mkScores(st, 1000), 10000)
	if th.White < 0.5 {
		t.Errorf("white band = %v, want dominant for weak predictor", th.White)
	}
}

func TestLogScaleLength(t *testing.T) {
	small := core.Stats{F: 10, S: 0, Fobs: 10, Sobs: 10}
	big := core.Stats{F: 10000, S: 0, Fobs: 10000, Sobs: 10}
	thSmall := Compute(small, mkScores(small, 20000), 10000)
	thBig := Compute(big, mkScores(big, 20000), 10000)
	if thSmall.Len01 >= thBig.Len01 {
		t.Error("length not increasing in observations")
	}
	// Log scale: 1000x more observations is far less than 1000x longer.
	if thBig.Len01/thSmall.Len01 > 10 {
		t.Error("length looks linear, want logarithmic")
	}
}

func TestTextRendering(t *testing.T) {
	st := core.Stats{F: 100, S: 100, Fobs: 150, Sobs: 850}
	th := Compute(st, mkScores(st, 500), 500)
	bar := th.Text(30)
	if len(bar) != 32 { // includes brackets
		t.Errorf("bar length = %d: %q", len(bar), bar)
	}
	if !strings.HasPrefix(bar, "[") || !strings.HasSuffix(bar, "]") {
		t.Errorf("bar missing brackets: %q", bar)
	}
	empty := Compute(core.Stats{}, mkScores(core.Stats{}, 500), 500)
	if got := empty.Text(10); got != "["+strings.Repeat(" ", 10)+"]" {
		t.Errorf("empty bar = %q", got)
	}
}

func TestTextNeverOverflowsProperty(t *testing.T) {
	f := func(f, s, fo, so uint16, numF uint16, width uint8) bool {
		st := core.Stats{F: int(f % 1000), S: int(s % 1000)}
		st.Fobs = st.F + int(fo%1000)
		st.Sobs = st.S + int(so%1000)
		w := int(width%60) + 1
		th := Compute(st, mkScores(st, int(numF)+2), 2000)
		bar := th.Text(w)
		if len(bar) != w+2 {
			return false
		}
		sum := th.Black + th.Dark + th.Light + th.White
		return th.Obs == 0 || math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHTMLRendering(t *testing.T) {
	st := core.Stats{F: 100, S: 10, Fobs: 120, Sobs: 880}
	th := Compute(st, mkScores(st, 500), 500)
	html := th.HTML(160)
	for _, want := range []string{"thermo", "#000", "#c00"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q: %s", want, html)
		}
	}
}
