package shard

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/core"
)

func rawGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// engineFixture: two shards splitting the corpus, a gateway over them,
// and a reference collector holding the whole corpus.
func engineFixture(t *testing.T) (gw *httptest.Server, ref *httptest.Server, urls []string) {
	t.Helper()
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := collector.Config{
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
	}
	const numShards = 2
	urls = make([]string, numShards)
	shards := make([]*collector.Server, numShards)
	for i := range urls {
		var ts *httptest.Server
		shards[i], ts = startCollector(t, cfg)
		urls[i] = ts.URL
	}
	for i, r := range in.Set.Reports {
		shards[i%numShards].Ingest(r)
	}
	gwSrv, err := NewGateway(GatewayConfig{
		Shards:      urls,
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw = httptest.NewServer(gwSrv.Handler())
	t.Cleanup(gw.Close)

	refSrv, refTS := startCollector(t, cfg)
	for _, r := range in.Set.Reports {
		refSrv.Ingest(r)
	}
	return gw, refTS, urls
}

// TestGatewayEngineEquivalence: for the default engine the merged
// gateway body is byte-identical to a single collector over the same
// corpus; for every other engine — the counting engines
// (order-independent by construction) and logreg (which canonically
// content-sorts its training set before the gradient loop) — the
// ?engine= body is byte-identical too.
func TestGatewayEngineEquivalence(t *testing.T) {
	gw, ref, _ := engineFixture(t)

	q := "/v1/predictors?k=0&affinity=3"
	code, gwBody := rawGet(t, gw.URL+q)
	if code != http.StatusOK {
		t.Fatalf("gateway %s = %d: %s", q, code, gwBody)
	}
	_, refBody := rawGet(t, ref.URL+q)
	if !bytes.Equal(gwBody, refBody) {
		t.Fatal("merged default-engine body differs from single collector")
	}
	if _, named := rawGet(t, gw.URL+q+"&engine=eliminate"); !bytes.Equal(named, gwBody) {
		t.Fatal("gateway ?engine=eliminate body differs from its engine-less body")
	}

	for _, name := range core.EngineNames() {
		if name == core.DefaultEngineName {
			continue
		}
		path := "/v1/predictors?engine=" + name + "&k=15"
		code, gwBody := rawGet(t, gw.URL+path)
		if code != http.StatusOK {
			t.Errorf("gateway %s = %d: %s", path, code, gwBody)
			continue
		}
		if len(bytes.TrimSpace(gwBody)) <= len("[]") {
			t.Errorf("gateway %s served an empty ranking", path)
		}
		if _, refBody := rawGet(t, ref.URL+path); !bytes.Equal(gwBody, refBody) {
			t.Errorf("%s: merged body differs from single collector\n gw: %s\nref: %s", name, gwBody, refBody)
		}
	}

	// /v1/compare over counting engines: merged == single, byte for byte.
	cmp := "/v1/compare?engines=ochiai,tarantula,jaccard&k=10"
	code, gwCmp := rawGet(t, gw.URL+cmp)
	if code != http.StatusOK {
		t.Fatalf("gateway %s = %d: %s", cmp, code, gwCmp)
	}
	if _, refCmp := rawGet(t, ref.URL+cmp); !bytes.Equal(gwCmp, refCmp) {
		t.Fatal("merged /v1/compare differs from single collector")
	}

	// Unknown engines 400 on the gateway exactly as on a collector.
	code, body := rawGet(t, gw.URL+"/v1/predictors?engine=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("gateway unknown engine = %d, want 400", code)
	}
	if !strings.Contains(string(body), "registered engines") || !strings.Contains(string(body), "eliminate") {
		t.Errorf("gateway 400 body does not list registered engines: %q", body)
	}
	if code, _ := rawGet(t, gw.URL+"/v1/compare?engines=ochiai"); code != http.StatusBadRequest {
		t.Errorf("gateway single-engine compare = %d, want 400", code)
	}
}

// TestRouterReadRelay: the router relays /v1/predictors and
// /v1/compare — to -read-from (the gateway) when set, else to its
// first live backend — passing the query string through and the status
// code back, so clients keep a single base URL for writes and reads.
func TestRouterReadRelay(t *testing.T) {
	gw, _, urls := engineFixture(t)

	viaGateway, err := NewRouter(RouterConfig{
		Backends:       urls,
		ReadFrom:       gw.URL,
		HealthInterval: 100 * time.Millisecond,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(viaGateway.Close)
	rt := httptest.NewServer(viaGateway.Handler())
	t.Cleanup(rt.Close)

	for _, path := range []string{
		"/v1/predictors?k=10&affinity=2",
		"/v1/predictors?engine=ochiai&k=10",
		"/v1/compare?engines=ochiai,jaccard&k=10",
	} {
		code, viaRouter := rawGet(t, rt.URL+path)
		if code != http.StatusOK {
			t.Fatalf("router %s = %d: %s", path, code, viaRouter)
		}
		if _, direct := rawGet(t, gw.URL+path); !bytes.Equal(viaRouter, direct) {
			t.Errorf("%s: relayed body differs from the gateway's", path)
		}
	}

	// Error statuses pass through: unknown engine stays a 400 naming the
	// registered engines.
	code, body := rawGet(t, rt.URL+"/v1/predictors?engine=bogus")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "registered engines") {
		t.Errorf("relayed unknown engine = %d %q, want 400 naming engines", code, body)
	}

	// Without -read-from the relay answers from the first live backend —
	// the single-shard deployment needs no gateway.
	viaBackend, err := NewRouter(RouterConfig{
		Backends:       urls[:1],
		HealthInterval: 100 * time.Millisecond,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(viaBackend.Close)
	rt2 := httptest.NewServer(viaBackend.Handler())
	t.Cleanup(rt2.Close)

	path := "/v1/predictors?engine=tarantula&k=10"
	code, viaRouter := rawGet(t, rt2.URL+path)
	if code != http.StatusOK {
		t.Fatalf("router (no -read-from) %s = %d: %s", path, code, viaRouter)
	}
	if _, direct := rawGet(t, urls[0]+path); !bytes.Equal(viaRouter, direct) {
		t.Error("relayed body differs from the backend's")
	}
}
