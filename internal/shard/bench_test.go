package shard

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cbi/internal/collector"
)

// BenchmarkShardedIngest measures end-to-end sharded ingestion: 8
// clients streaming a synthetic corpus through the router into 3
// collector shards, timed until every report is applied. CI runs it
// with -benchtime=1x as a smoke test that the full write path works
// under the race detector's scrutiny too.
func BenchmarkShardedIngest(b *testing.B) {
	set, siteOf := syntheticInput(2000)
	cfg := collector.Config{
		NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf,
		Logf: quietLogf,
	}
	const numShards = 3
	shards := make([]*collector.Server, numShards)
	urls := make([]string, numShards)
	for i := range shards {
		srv, err := collector.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shards[i], urls[i] = srv, ts.URL
	}
	router, err := NewRouter(RouterConfig{Backends: urls, Logf: quietLogf})
	if err != nil {
		b.Fatal(err)
	}
	defer router.Close()
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()

	ctx := context.Background()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		done := make(chan error, 8)
		for w := 0; w < 8; w++ {
			go func(w int) {
				client := collector.NewClient(rt.URL, set.NumSites, set.NumPreds,
					collector.WithBatchSize(64),
					collector.WithClientID(fmt.Sprintf("bench-%d-%d", iter, w)))
				for i := w; i < len(set.Reports); i += 8 {
					if err := client.Add(ctx, set.Reports[i]); err != nil {
						done <- err
						return
					}
				}
				done <- client.Flush(ctx)
			}(w)
		}
		for w := 0; w < 8; w++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
		if err := router.Drain(30 * time.Second); err != nil {
			b.Fatal(err)
		}
		want := int64(len(set.Reports)) * int64(iter+1)
		deadline := time.Now().Add(30 * time.Second)
		for {
			var total int64
			for _, s := range shards {
				total += s.StatsNow().ReportsApplied
			}
			if total >= want {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("shards applied %d of %d", total, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.ReportMetric(float64(len(set.Reports)), "reports/op")
}

// BenchmarkGatewayQuery contrasts the two read-path modes over a live
// fleet: each op trickles one fresh run into a shard, then queries the
// gateway. With warm delta sync each fan-out ships only the mutation
// since the last query (O(changes)); with DisableDeltaSync every
// fan-out re-ships each shard's entire counter-and-window state
// (O(state)) — the gap is the point of the warm views.
func BenchmarkGatewayQuery(b *testing.B) {
	set, siteOf := syntheticInput(2000)
	cfg := collector.Config{
		NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf,
		Logf: quietLogf,
	}
	const numShards = 3
	shards := make([]*collector.Server, numShards)
	urls := make([]string, numShards)
	for i := range shards {
		srv, err := collector.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shards[i], urls[i] = srv, ts.URL
	}
	per := len(set.Reports) / numShards
	for i := range shards {
		if err := shards[i].IngestBatch(fmt.Sprintf("seed-%d", i), set.Reports[i*per:(i+1)*per]); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"warm-delta", false},
		{"full-fanout", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			gw, err := NewGateway(GatewayConfig{
				Shards:   urls,
				NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf,
				DisableDeltaSync: mode.disable,
				Logf:             quietLogf,
			})
			if err != nil {
				b.Fatal(err)
			}
			gts := httptest.NewServer(gw.Handler())
			defer gts.Close()
			get := func() {
				resp, err := http.Get(gts.URL + "/v1/scores?k=30")
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("/v1/scores = %d", resp.StatusCode)
				}
			}
			get() // warm the per-shard views before timing
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := shards[i%numShards].IngestBatch(
					fmt.Sprintf("%s-%d", mode.name, i),
					set.Reports[i%len(set.Reports):i%len(set.Reports)+1]); err != nil {
					b.Fatal(err)
				}
				get()
			}
		})
	}
}
