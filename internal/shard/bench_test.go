package shard

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"cbi/internal/collector"
)

// BenchmarkShardedIngest measures end-to-end sharded ingestion: 8
// clients streaming a synthetic corpus through the router into 3
// collector shards, timed until every report is applied. CI runs it
// with -benchtime=1x as a smoke test that the full write path works
// under the race detector's scrutiny too.
func BenchmarkShardedIngest(b *testing.B) {
	set, siteOf := syntheticInput(2000)
	cfg := collector.Config{
		NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf,
		Logf: quietLogf,
	}
	const numShards = 3
	shards := make([]*collector.Server, numShards)
	urls := make([]string, numShards)
	for i := range shards {
		srv, err := collector.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shards[i], urls[i] = srv, ts.URL
	}
	router, err := NewRouter(RouterConfig{Backends: urls, Logf: quietLogf})
	if err != nil {
		b.Fatal(err)
	}
	defer router.Close()
	rt := httptest.NewServer(router.Handler())
	defer rt.Close()

	ctx := context.Background()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		done := make(chan error, 8)
		for w := 0; w < 8; w++ {
			go func(w int) {
				client := collector.NewClient(rt.URL, set.NumSites, set.NumPreds,
					collector.WithBatchSize(64),
					collector.WithClientID(fmt.Sprintf("bench-%d-%d", iter, w)))
				for i := w; i < len(set.Reports); i += 8 {
					if err := client.Add(ctx, set.Reports[i]); err != nil {
						done <- err
						return
					}
				}
				done <- client.Flush(ctx)
			}(w)
		}
		for w := 0; w < 8; w++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
		if err := router.Drain(30 * time.Second); err != nil {
			b.Fatal(err)
		}
		want := int64(len(set.Reports)) * int64(iter+1)
		deadline := time.Now().Add(30 * time.Second)
		for {
			var total int64
			for _, s := range shards {
				total += s.StatsNow().ReportsApplied
			}
			if total >= want {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("shards applied %d of %d", total, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.ReportMetric(float64(len(set.Reports)), "reports/op")
}
