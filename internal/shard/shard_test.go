package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/harness"
	"cbi/internal/report"
	"cbi/internal/subjects"
)

var (
	corpusOnce sync.Once
	corpusRes  *harness.Result
)

// testCorpus runs one shared ccrypt experiment — a real subject corpus
// with real failures — reused by every test in the package.
func testCorpus(t *testing.T) *harness.Result {
	t.Helper()
	corpusOnce.Do(func() {
		corpusRes = harness.Run(harness.Config{
			Subject: subjects.Ccrypt(),
			Runs:    1000,
			Mode:    harness.SampleUniform,
			Workers: 4,
		})
	})
	if corpusRes.NumFailing() == 0 {
		t.Fatal("test corpus has no failing runs; equivalence tests are vacuous")
	}
	return corpusRes
}

func quietLogf(string, ...any) {}

func TestRingOwnerDeterministicAndBalanced(t *testing.T) {
	r := newRing(5, 0)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("client-%d", i)
		b := r.owner(key)
		if b2 := r.owner(key); b2 != b {
			t.Fatalf("owner(%q) not deterministic: %d then %d", key, b, b2)
		}
		counts[b]++
	}
	for b, c := range counts {
		// 5000 keys over 5 backends with 64 vnodes: expect ~1000 each;
		// a backend below a third of fair share means the ring is badly
		// unbalanced.
		if c < 333 {
			t.Fatalf("backend %d got %d of 5000 keys; distribution %v", b, c, counts)
		}
	}
}

func TestRingOrderCoversAllBackendsOnce(t *testing.T) {
	r := newRing(4, 8)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		order := r.order(key)
		if len(order) != 4 {
			t.Fatalf("order(%q) = %v, want 4 distinct backends", key, order)
		}
		seen := map[int]bool{}
		for _, b := range order {
			if seen[b] {
				t.Fatalf("order(%q) repeats backend %d: %v", key, b, order)
			}
			seen[b] = true
		}
		if order[0] != r.owner(key) {
			t.Fatalf("order(%q)[0] = %d, owner = %d", key, order[0], r.owner(key))
		}
		if got := r.order(key); !reflect.DeepEqual(got, order) {
			t.Fatalf("order(%q) not deterministic: %v then %v", key, order, got)
		}
	}
}

// startCollector boots one collector shard over HTTP.
func startCollector(t *testing.T, cfg collector.Config) (*collector.Server, *httptest.Server) {
	t.Helper()
	cfg.Logf = quietLogf
	srv, err := collector.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// TestShardedEquivalence is the headline property of the sharded tier:
// a 3-shard deployment — clients partitioned by a consistent-hashing
// router, queries answered by a merging gateway — produces /v1/scores
// and /v1/predictors responses element-for-element identical to one
// unsharded collector that ingested the same corpus. Then one backend
// is killed mid-test and the gateway must keep serving, reporting the
// outage in degraded_shards, while the router re-routes new traffic to
// the survivors.
func TestShardedEquivalence(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := collector.Config{
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
	}

	const numShards = 3
	shards := make([]*collector.Server, numShards)
	urls := make([]string, numShards)
	backends := make([]*httptest.Server, numShards)
	for i := range shards {
		shards[i], backends[i] = startCollector(t, cfg)
		urls[i] = backends[i].URL
	}

	router, err := NewRouter(RouterConfig{
		Backends:       urls,
		HealthInterval: 100 * time.Millisecond,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	// Stream the corpus through the router from several clients with
	// fixed identities, so the shard assignment is deterministic and
	// every shard sees a nontrivial slice.
	const numClients = 6
	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for w := 0; w < numClients; w++ {
		client := collector.NewClient(rt.URL, in.Set.NumSites, in.Set.NumPreds,
			collector.WithBatchSize(11+7*w),
			collector.WithClientID(fmt.Sprintf("client-%d", w)))
		wg.Add(1)
		go func(w int, client *collector.Client) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; i < len(in.Set.Reports); i += numClients {
				if err := client.Add(ctx, in.Set.Reports[i]); err != nil {
					errs <- err
					return
				}
			}
			errs <- client.Flush(ctx)
		}(w, client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := router.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitAppliedTotal(t, shards, int64(len(in.Set.Reports)))

	// Every shard should own a real slice of the corpus — otherwise the
	// merge below is vacuously testing a single collector.
	for i, s := range shards {
		if n := s.StatsNow().ReportsApplied; n == 0 {
			t.Fatalf("shard %d ingested no reports; consistent hashing sent everything elsewhere", i)
		}
	}

	gwSrv, err := NewGateway(GatewayConfig{
		Shards:      urls,
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(gwSrv.Handler())
	t.Cleanup(gw.Close)

	// Reference: one unsharded collector over the same corpus.
	refSrv, ref := startCollector(t, cfg)
	for _, r := range in.Set.Reports {
		refSrv.Ingest(r)
	}

	var gotScores, wantScores []collector.ScoreEntry
	getJSON(t, gw.URL+"/v1/scores?k=30", &gotScores)
	getJSON(t, ref.URL+"/v1/scores?k=30", &wantScores)
	if len(wantScores) == 0 {
		t.Fatal("reference collector returned no scores")
	}
	if !reflect.DeepEqual(gotScores, wantScores) {
		t.Fatalf("sharded /v1/scores diverges from single collector:\n got %+v\nwant %+v", gotScores, wantScores)
	}

	var gotPreds, wantPreds []collector.PredictorEntry
	getJSON(t, gw.URL+"/v1/predictors?k=0&affinity=3", &gotPreds)
	getJSON(t, ref.URL+"/v1/predictors?k=0&affinity=3", &wantPreds)
	if len(wantPreds) == 0 {
		t.Fatal("reference collector returned no predictors")
	}
	if !reflect.DeepEqual(gotPreds, wantPreds) {
		t.Fatalf("sharded /v1/predictors diverges from single collector:\n got %+v\nwant %+v", gotPreds, wantPreds)
	}

	var gwStats GatewayStats
	getJSON(t, gw.URL+"/v1/stats", &gwStats)
	if gwStats.Runs != int64(len(in.Set.Reports)) || gwStats.DegradedShards != 0 {
		t.Fatalf("gateway stats = %+v, want %d runs and 0 degraded shards", gwStats, len(in.Set.Reports))
	}

	// Malformed query values 400 exactly as a single collector's would,
	// so swapping a collector URL for a gateway URL changes nothing.
	for _, path := range []string{"/v1/scores?k=banana", "/v1/predictors?k=banana", "/v1/predictors?affinity=x"} {
		resp, err := http.Get(gw.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}

	// Kill one backend. The gateway must keep answering from the
	// survivors and say so; the router must keep accepting writes.
	backends[1].Close()
	liveBefore := shards[0].StatsNow().ReportsApplied + shards[2].StatsNow().ReportsApplied

	getJSON(t, gw.URL+"/v1/stats", &gwStats)
	if gwStats.DegradedShards != 1 {
		t.Fatalf("after killing a shard, degraded_shards = %d, want 1 (%+v)", gwStats.DegradedShards, gwStats)
	}
	gotScores = nil
	if code := getJSON(t, gw.URL+"/v1/scores?k=10", &gotScores); code != http.StatusOK {
		t.Fatalf("gateway /v1/scores returned %d with one dead shard", code)
	}
	if len(gotScores) == 0 {
		t.Fatal("gateway served no scores from the surviving shards")
	}

	// New traffic — including traffic hashed to the dead shard — must
	// land on survivors via failover.
	const extra = 120
	client := collector.NewClient(rt.URL, in.Set.NumSites, in.Set.NumPreds,
		collector.WithBatchSize(10), collector.WithClientID("post-outage"))
	ctx := context.Background()
	for i := 0; i < extra; i++ {
		if err := client.Add(ctx, in.Set.Reports[i%len(in.Set.Reports)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := router.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitAppliedTotal(t, []*collector.Server{shards[0], shards[2]}, liveBefore+extra)

	// The router itself still reports healthy while any backend lives.
	resp, err := http.Get(rt.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /healthz = %d with 2 of 3 backends alive", resp.StatusCode)
	}
	var rst RouterStats
	getJSON(t, rt.URL+"/v1/stats", &rst)
	if rst.Dropped != 0 {
		t.Fatalf("router dropped %d batches; failover should have re-routed them (%+v)", rst.Dropped, rst)
	}
}

// waitAppliedTotal polls until the servers' applied counts sum to n.
func waitAppliedTotal(t *testing.T, servers []*collector.Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var total int64
	for time.Now().Before(deadline) {
		total = 0
		for _, s := range servers {
			total += s.StatsNow().ReportsApplied
		}
		if total >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("shards applied %d of %d reports before deadline", total, n)
}

// syntheticInput builds a small deterministic corpus for router-only
// tests and benchmarks that do not need a real subject.
func syntheticInput(n int) (*report.Set, []int32) {
	const numSites, numPreds = 32, 96
	siteOf := make([]int32, numPreds)
	for p := range siteOf {
		siteOf[p] = int32(p / 3)
	}
	rng := rand.New(rand.NewSource(42))
	set := &report.Set{NumSites: numSites, NumPreds: numPreds}
	allSites := make([]int32, numSites)
	for s := range allSites {
		allSites[s] = int32(s)
	}
	for i := 0; i < n; i++ {
		r := &report.Report{Failed: rng.Intn(4) == 0, ObservedSites: allSites}
		for p := 0; p < numPreds; p++ {
			if rng.Intn(3) == 0 {
				r.TruePreds = append(r.TruePreds, int32(p))
			}
		}
		set.Reports = append(set.Reports, r)
	}
	return set, siteOf
}

// TestRouterFailoverToLiveBackend starts a router whose first-choice
// backend for many keys is unreachable from the outset: every batch
// must still land on the surviving collector, with nothing dropped.
func TestRouterFailoverToLiveBackend(t *testing.T) {
	set, siteOf := syntheticInput(300)
	srv, ts := startCollector(t, collector.Config{
		NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf,
	})

	// Backend 0 is a dead address; backend 1 is real.
	router, err := NewRouter(RouterConfig{
		Backends:       []string{"http://127.0.0.1:1", ts.URL},
		HealthInterval: 50 * time.Millisecond,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	ctx := context.Background()
	for w := 0; w < 4; w++ {
		client := collector.NewClient(rt.URL, set.NumSites, set.NumPreds,
			collector.WithBatchSize(25),
			collector.WithClientID(fmt.Sprintf("fo-client-%d", w)))
		for i := w; i < len(set.Reports); i += 4 {
			if err := client.Add(ctx, set.Reports[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := client.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitAppliedTotal(t, []*collector.Server{srv}, int64(len(set.Reports)))

	var rst RouterStats
	getJSON(t, rt.URL+"/v1/stats", &rst)
	if rst.Dropped != 0 || rst.NoShards != 0 {
		t.Fatalf("router lost traffic: %+v", rst)
	}
	if rst.Backends[0].Up {
		t.Fatalf("dead backend still marked up: %+v", rst)
	}
}

// TestRoutingKeyPrecedence checks the partition key fallback chain:
// client id, then batch id, then remote address.
func TestRoutingKeyPrecedence(t *testing.T) {
	mk := func(clientID, batchID string) *http.Request {
		req := httptest.NewRequest(http.MethodPost, "/v1/reports", nil)
		req.RemoteAddr = "10.1.2.3:5555"
		if clientID != "" {
			req.Header.Set("X-CBI-Client-ID", clientID)
		}
		if batchID != "" {
			req.Header.Set("X-CBI-Batch-ID", batchID)
		}
		return req
	}
	if got := routingKey(mk("cid", "bid")); got != "cid" {
		t.Fatalf("routingKey with both ids = %q, want client id", got)
	}
	if got := routingKey(mk("", "bid")); got != "bid" {
		t.Fatalf("routingKey with batch id only = %q, want batch id", got)
	}
	if got := routingKey(mk("", "")); got != "10.1.2.3" {
		t.Fatalf("routingKey with no ids = %q, want peer host", got)
	}
}

// TestGatewayStatsServesCachedWhenAllShardsDown pins the degraded-mode
// contract of GET /v1/stats: once the gateway has answered successfully
// at least once, a total shard outage yields the last known totals
// marked stale (HTTP 200) rather than an all-zero error body, and each
// such response is counted in cbi_gateway_degraded_responses_total. A
// gateway that has never seen a healthy fan-out still returns 503.
func TestGatewayStatsServesCachedWhenAllShardsDown(t *testing.T) {
	const (
		numSites = 2
		numPreds = 6
	)
	siteOf := []int32{0, 0, 0, 1, 1, 1}

	srv, ts := startCollector(t, collector.Config{
		NumSites: numSites, NumPreds: numPreds, SiteOf: siteOf,
		RunLogSize: 16,
	})
	defer srv.Close()

	client := collector.NewClient(ts.URL, numSites, numPreds)
	set := &report.Set{NumSites: numSites, NumPreds: numPreds}
	for i := 0; i < 8; i++ {
		set.Reports = append(set.Reports, &report.Report{
			Failed:        i%2 == 0,
			ObservedSites: []int32{0, 1},
			TruePreds:     []int32{int32(i % numPreds)},
		})
	}
	if err := client.SubmitSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.StatsNow().ReportsApplied < int64(len(set.Reports)) {
		if time.Now().After(deadline) {
			t.Fatal("collector never applied the submitted reports")
		}
		time.Sleep(5 * time.Millisecond)
	}

	gw, err := NewGateway(GatewayConfig{
		Shards:   []string{ts.URL},
		NumSites: numSites, NumPreds: numPreds, SiteOf: siteOf,
		Timeout: 2 * time.Second,
		Logf:    quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()

	// Healthy fan-out: fresh totals, cached for later.
	var healthy GatewayStats
	if code := getJSON(t, gts.URL+"/v1/stats", &healthy); code != http.StatusOK {
		t.Fatalf("healthy /v1/stats = %d, want 200", code)
	}
	if healthy.Stale || healthy.DegradedShards != 0 {
		t.Fatalf("healthy stats marked degraded: %+v", healthy)
	}
	if healthy.Runs != int64(len(set.Reports)) {
		t.Fatalf("healthy stats runs = %d, want %d", healthy.Runs, len(set.Reports))
	}

	// Kill the only shard: the same endpoint must keep answering with
	// the cached totals, marked stale, at 200.
	ts.Close()
	var stale GatewayStats
	if code := getJSON(t, gts.URL+"/v1/stats", &stale); code != http.StatusOK {
		t.Fatalf("degraded /v1/stats = %d, want 200 with cached body", code)
	}
	if !stale.Stale {
		t.Fatalf("degraded response not marked stale: %+v", stale)
	}
	if stale.Runs != healthy.Runs || stale.Failing != healthy.Failing {
		t.Fatalf("stale totals %+v do not match last healthy totals %+v", stale, healthy)
	}
	if stale.DegradedShards != 1 || len(stale.ShardErrors) == 0 {
		t.Fatalf("stale response must report the outage: %+v", stale)
	}

	var metrics strings.Builder
	gw.Metrics().WritePrometheus(&metrics)
	if !strings.Contains(metrics.String(), "cbi_gateway_degraded_responses_total 1") {
		t.Fatalf("degraded response not counted:\n%s", metrics.String())
	}

	// A gateway with no cache yet is honest about the outage: 503.
	cold, err := NewGateway(GatewayConfig{
		Shards:   []string{ts.URL}, // already closed
		NumSites: numSites, NumPreds: numPreds, SiteOf: siteOf,
		Timeout: 2 * time.Second,
		Logf:    quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(cold.Handler())
	defer cts.Close()
	var zero GatewayStats
	if code := getJSON(t, cts.URL+"/v1/stats", &zero); code != http.StatusServiceUnavailable {
		t.Fatalf("cold degraded /v1/stats = %d, want 503", code)
	}
}
