package shard

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cbi/internal/collector"
	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/obs"
	"cbi/internal/plan"
	"cbi/internal/report"
	"cbi/internal/sampling"
)

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Shards are the collector base URLs, in the same order as the
	// router's Backends. Optional when RingFrom is set.
	Shards []string
	// RingFrom, when set, is a router base URL whose GET /v1/ring the
	// gateway polls for the current shard set — so an elastic resize
	// (backend added or drained) reaches the read path without a
	// gateway restart. Shards, if also set, seeds the list until the
	// first successful poll.
	RingFrom string
	// RingRefresh is the RingFrom polling period (default 5s).
	RingRefresh time.Duration
	// NumSites and NumPreds are the instrumentation-plan dimensions all
	// shards must agree on.
	NumSites, NumPreds int
	// SiteOf maps predicate id → site id; required for /v1/scores and
	// /v1/predictors.
	SiteOf []int32
	// Fingerprint, when nonzero, is enforced against every shard
	// snapshot.
	Fingerprint uint64
	// Timeout bounds one shard fetch during a fan-out (default 15s).
	Timeout time.Duration
	// DisableDeltaSync turns off warm per-shard views: every fan-out
	// re-fetches each shard's full state instead of asking for the
	// mutations since the version the gateway already holds. Mostly a
	// debugging/benchmarking knob — delta sync is semantically invisible
	// (responses are bit-for-bit identical) and much cheaper.
	DisableDeltaSync bool
	// Metrics, when set, is the registry the gateway's metrics register
	// into; nil creates a private one. Served at GET /metrics.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SlowRequest, when positive, logs every HTTP request slower than
	// this threshold.
	SlowRequest time.Duration
	// Logf receives gateway diagnostics (default log.Printf).
	Logf func(format string, args ...any)

	// PlanEvery, when positive, makes the gateway the fleet's planner: it
	// periodically merges every shard's reach counts, re-plans per-site
	// sampling rates from the fleet-wide view, and pushes each published
	// plan to all shards. When zero the gateway is a plan proxy: GET
	// /v1/plan refreshes from the shards and serves the newest version
	// the fleet knows.
	PlanEvery time.Duration
	// PlanTarget and PlanMinRate parameterize sampling.PlanRates
	// (defaults sampling.DefaultTargetSamples, sampling.DefaultRate).
	PlanTarget  float64
	PlanMinRate float64
	// PlanMinRuns gates re-planning until the merged window holds at
	// least this many runs (default plan.DefaultMinRuns).
	PlanMinRuns int64
	// PlanBoostRadius is the half-width of the top-predictor site
	// neighborhood boosted to rate 1; 0 disables boosting.
	PlanBoostRadius int
	// PlanPushKey is the API key presented when pushing plans to shards
	// whose write path requires one.
	PlanPushKey string
}

// Gateway is the read-path of a sharded collector deployment: it fans a
// query out to every shard, pulls each shard's counter snapshot and
// run-log segment, and merges them into exactly the responses one
// unsharded collector would serve. Counters merge by addition (they are
// sums over disjoint run sets); run logs merge by concatenation, and
// because every core analysis step is order-independent with
// deterministic tie-breaking, the merged /v1/predictors output is
// element-for-element identical to single-collector output over the
// same runs.
//
// The gateway is stateless — every query re-fetches — so it needs no
// recovery story and any number of gateways can front the same shards.
// A shard that fails to answer is skipped and counted in
// degraded_shards; the gateway serves the union of the live shards
// rather than failing the query.
type Gateway struct {
	cfg     GatewayConfig
	hc      *http.Client
	logf    func(string, ...any)
	handler http.Handler

	metrics           *obs.Registry
	engineRequests    *obs.CounterVec   // merged /v1/predictors answers per engine
	fanoutSeconds     *obs.HistogramVec // per-shard snapshot fetch latency
	mergeSeconds      *obs.Histogram    // counter+run-log fold duration
	degradedShards    *obs.Gauge        // shards that failed the last fan-out
	degradedResponses *obs.Counter      // stats responses served from cache
	shardErrors       *obs.CounterVec   // failed fetches per shard

	replans         *obs.Counter // published fleet plans
	planFetches     *obs.Counter // /v1/plan bodies served
	planNotModified *obs.Counter // /v1/plan 304s served
	planPushes      *obs.Counter // plans accepted by shards
	planPushErrors  *obs.Counter // failed plan pushes to shards

	deltaPulls     *obs.Counter // shard fetches answered incrementally
	fullPulls      *obs.Counter // shard fetches that shipped full state
	deltaFallbacks *obs.Counter // warm views dropped (restart / stale since)
	ringReloads    *obs.Counter // shard-set changes adopted from the router's ring

	// shards is the live shard set: the URLs every fan-out queries plus
	// one warm cached state view per shard, advanced by delta pulls.
	// Static deployments fix it at cfg.Shards; with RingFrom set, the
	// ring loop replaces it as resizes commit.
	shards shardSet

	// planMu serializes re-planning, shard refresh, and pushes so
	// concurrent /v1/plan proxying and the planner ticker cannot
	// interleave version adoption.
	planMu    sync.Mutex
	planStore *plan.Store
	planner   *plan.Planner

	die       chan struct{}
	closeOnce sync.Once

	// statsMu guards the last fully- or partially-successful stats
	// response, served (marked stale) when every shard is down rather
	// than erroring with an all-zero body.
	statsMu   sync.Mutex
	lastStats *GatewayStats
}

// NewGateway builds a gateway over cfg.Shards and/or the shard set the
// router at cfg.RingFrom serves.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Shards) == 0 && cfg.RingFrom == "" {
		return nil, fmt.Errorf("shard: gateway needs at least one shard (or a router to discover them from)")
	}
	if cfg.NumSites <= 0 || cfg.NumPreds <= 0 {
		return nil, fmt.Errorf("shard: gateway needs positive dimensions, got %dx%d", cfg.NumSites, cfg.NumPreds)
	}
	if len(cfg.SiteOf) != cfg.NumPreds {
		return nil, fmt.Errorf("shard: gateway SiteOf has %d entries for %d predicates", len(cfg.SiteOf), cfg.NumPreds)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.PlanTarget <= 0 {
		cfg.PlanTarget = sampling.DefaultTargetSamples
	}
	if cfg.PlanMinRate <= 0 {
		cfg.PlanMinRate = sampling.DefaultRate
	}
	if cfg.PlanMinRuns <= 0 {
		cfg.PlanMinRuns = plan.DefaultMinRuns
	}
	if cfg.RingRefresh <= 0 {
		cfg.RingRefresh = 5 * time.Second
	}
	g := &Gateway{
		cfg:  cfg,
		hc:   &http.Client{Timeout: cfg.Timeout},
		logf: cfg.Logf,
		die:  make(chan struct{}),
	}
	g.shards.replace(cfg.Shards)
	g.planStore = plan.NewStore(plan.Bootstrap(cfg.NumSites, cfg.Fingerprint, cfg.PlanTarget, cfg.PlanMinRate))
	g.planner = plan.NewPlanner(g.planStore, plan.PlannerConfig{
		Source:      g.planInput,
		Target:      cfg.PlanTarget,
		MinRate:     cfg.PlanMinRate,
		MinRuns:     cfg.PlanMinRuns,
		BoostRadius: cfg.PlanBoostRadius,
		Fingerprint: cfg.Fingerprint,
		SourceName:  "gateway",
	})
	m := cfg.Metrics
	if m == nil {
		m = obs.NewRegistry()
	}
	g.metrics = m
	g.engineRequests = m.CounterVec("cbi_predictors_engine_requests_total",
		"Merged predictor rankings served, labelled by scoring engine.", "engine")
	g.fanoutSeconds = m.HistogramVec("cbi_gateway_fanout_seconds",
		"Per-shard /v1/snapshot fetch latency during a fan-out, in seconds.", nil, "shard")
	g.mergeSeconds = m.Histogram("cbi_gateway_merge_seconds",
		"Time to fold fetched shard snapshots and run logs together, in seconds.", nil)
	g.degradedShards = m.Gauge("cbi_gateway_degraded_shards",
		"Shards that failed to answer the most recent fan-out.")
	g.degradedResponses = m.Counter("cbi_gateway_degraded_responses_total",
		"/v1/stats responses served from the cached totals because no shard answered.")
	g.shardErrors = m.CounterVec("cbi_gateway_shard_errors_total",
		"Failed snapshot fetches per shard.", "shard")
	g.replans = m.Counter("cbi_gateway_replans_total",
		"Fleet sampling plans published by the gateway planner.")
	g.planFetches = m.Counter("cbi_gateway_plan_fetches_total",
		"GET /v1/plan responses served with a plan body.")
	g.planNotModified = m.Counter("cbi_gateway_plan_not_modified_total",
		"GET /v1/plan responses answered 304 Not Modified.")
	g.planPushes = m.Counter("cbi_gateway_plan_pushes_total",
		"Sampling plans successfully pushed to shards.")
	g.planPushErrors = m.Counter("cbi_gateway_plan_push_errors_total",
		"Failed sampling-plan pushes to shards.")
	g.deltaPulls = m.Counter("cbi_gateway_delta_pulls_total",
		"Shard state fetches answered incrementally (delta applied to the warm view).")
	g.fullPulls = m.Counter("cbi_gateway_full_pulls_total",
		"Shard state fetches that shipped the shard's full state.")
	g.deltaFallbacks = m.Counter("cbi_gateway_delta_fallbacks_total",
		"Warm shard views dropped and resynced (shard restart or delta history too old).")
	g.ringReloads = m.Counter("cbi_gateway_ring_reloads_total",
		"Shard-set changes adopted from the router's ring.")
	m.GaugeFunc("cbi_gateway_shards",
		"Shards the gateway currently fans queries out to.", func() float64 {
			return float64(len(g.shards.list()))
		})
	m.GaugeFunc("cbi_gateway_warm_runs",
		"Runs held across the gateway's warm per-shard state views.", func() float64 {
			total := 0
			for _, ws := range g.shards.views() {
				ws.mu.Lock()
				if ws.valid {
					total += len(ws.window)
				}
				ws.mu.Unlock()
			}
			return float64(total)
		})
	m.GaugeFunc("cbi_gateway_plan_version",
		"Version of the sampling plan the gateway currently serves.", func() float64 {
			return float64(g.planStore.Version())
		})
	m.GaugeFunc("cbi_gateway_plan_boosted_sites",
		"Sites boosted to rate 1 in the current sampling plan.", func() float64 {
			if p := g.planStore.Current(); p != nil {
				return float64(len(p.Boosts))
			}
			return 0
		})
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/scores", g.handleScores)
	mux.HandleFunc("/v1/predictors", g.handlePredictors)
	mux.HandleFunc("/v1/compare", g.handleCompare)
	mux.HandleFunc("/v1/stats", g.handleStats)
	mux.HandleFunc("/v1/plan", g.handlePlan)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.Handle("/metrics", m.Handler())
	if cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	g.handler = obs.NewHTTP(obs.HTTPConfig{
		Registry:    m,
		Paths:       []string{"/v1/scores", "/v1/predictors", "/v1/compare", "/v1/stats", "/v1/plan", "/healthz", "/metrics"},
		SlowRequest: cfg.SlowRequest,
		Logf:        cfg.Logf,
	}).Wrap(mux)
	if cfg.PlanEvery > 0 {
		go g.planLoop()
	}
	if cfg.RingFrom != "" {
		// One synchronous best-effort refresh so a gateway started with
		// no static shard list can answer its first query; then poll.
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
		g.refreshRing(ctx)
		cancel()
		go g.ringLoop()
	}
	return g, nil
}

// shardSet is the gateway's live shard list plus the warm per-shard
// state views, keyed by URL so a view survives ring reloads that leave
// its shard in place.
type shardSet struct {
	mu   sync.Mutex
	urls []string
	warm map[string]*warmShard
}

// list returns the current shard URLs (a copy).
func (s *shardSet) list() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.urls...)
}

// views returns the current warm views (a copy of the map's values).
func (s *shardSet) views() []*warmShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*warmShard, 0, len(s.warm))
	for _, ws := range s.warm {
		out = append(out, ws)
	}
	return out
}

// viewFor returns the warm view for a shard URL, creating it if needed.
func (s *shardSet) viewFor(url string) *warmShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.warm == nil {
		s.warm = make(map[string]*warmShard)
	}
	ws, ok := s.warm[url]
	if !ok {
		ws = &warmShard{}
		s.warm[url] = ws
	}
	return ws
}

// replace swaps in a new shard list, dropping warm views for departed
// shards. It reports whether the list changed.
func (s *shardSet) replace(urls []string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	same := len(urls) == len(s.urls)
	if same {
		for i := range urls {
			if urls[i] != s.urls[i] {
				same = false
				break
			}
		}
	}
	if same {
		return false
	}
	keep := make(map[string]bool, len(urls))
	for _, u := range urls {
		keep[u] = true
	}
	for u := range s.warm {
		if !keep[u] {
			delete(s.warm, u)
		}
	}
	s.urls = append([]string(nil), urls...)
	return true
}

// refreshRing pulls the router's GET /v1/ring once and adopts the
// active shard set. Best effort: any failure leaves the current set.
func (g *Gateway) refreshRing(ctx context.Context) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.cfg.RingFrom+"/v1/ring", nil)
	if err != nil {
		return
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		g.logf("shard: gateway: ring refresh: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		g.logf("shard: gateway: ring refresh: router answered %d", resp.StatusCode)
		return
	}
	var st RingStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		g.logf("shard: gateway: ring refresh: decoding: %v", err)
		return
	}
	urls := make([]string, 0, len(st.Backends))
	for _, b := range st.Backends {
		if b.Active {
			urls = append(urls, b.URL)
		}
	}
	if len(urls) == 0 {
		// A ring with no active backend is a router mid-bootstrap or
		// broken; keep serving the set we have.
		return
	}
	if g.shards.replace(urls) {
		g.ringReloads.Inc()
		g.logf("shard: gateway: adopted ring v%d shard set (%d shards)", st.Version, len(urls))
	}
}

// ringLoop keeps the shard set in sync with the router until Close.
func (g *Gateway) ringLoop() {
	t := time.NewTicker(g.cfg.RingRefresh)
	defer t.Stop()
	for {
		select {
		case <-g.die:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
			g.refreshRing(ctx)
			cancel()
		}
	}
}

// Close stops the gateway's planner loop (if any). Safe to call more
// than once.
func (g *Gateway) Close() { g.closeOnce.Do(func() { close(g.die) }) }

// Metrics returns the gateway's metrics registry (also served at
// GET /metrics).
func (g *Gateway) Metrics() *obs.Registry { return g.metrics }

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.handler }

// shardState is one shard's contribution to a merged query.
type shardState struct {
	snap *corpus.AggSnapshot
	set  *report.Set
	err  error
}

// warmShard is one shard's cached state: the counter snapshot and run
// window as of (epoch, version), advanced in place by delta pulls.
// Queries receive clones, never the cached objects, so a later delta
// apply cannot race a reader.
type warmShard struct {
	mu      sync.Mutex
	valid   bool
	epoch   uint64
	version uint64
	snap    *corpus.AggSnapshot
	window  []*report.Report
}

// clone returns an independent copy of the warm state for one query.
// The snapshot arrays are deep-copied; the window shares the immutable
// report pointers under a fresh slice header.
func (ws *warmShard) clone() (*corpus.AggSnapshot, *report.Set) {
	snap := ws.snap.Clone()
	return snap, &report.Set{
		NumSites: snap.NumSites,
		NumPreds: snap.NumPreds,
		Reports:  append([]*report.Report(nil), ws.window...),
	}
}

// fetchAll pulls every shard's state concurrently — incrementally where
// a warm view exists, full otherwise. Failed shards come back with err
// set; the caller decides how degraded is too degraded.
func (g *Gateway) fetchAll(ctx context.Context) []shardState {
	shards := g.shards.list()
	out := make([]shardState, len(shards))
	var wg sync.WaitGroup
	for i, url := range shards {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			start := time.Now()
			out[i].snap, out[i].set, out[i].err = g.fetchShard(ctx, url)
			shard := strconv.Itoa(i)
			g.fanoutSeconds.With(shard).ObserveDuration(time.Since(start))
			if out[i].err != nil {
				g.shardErrors.With(shard).Inc()
			}
		}(i, url)
	}
	wg.Wait()
	down := 0
	for _, st := range out {
		if st.err != nil {
			down++
		}
	}
	g.degradedShards.Set(float64(down))
	return out
}

// fetchShard obtains one shard's current state. With a valid warm view
// it asks the shard only for the mutations since the version it holds
// (`?since=<epoch>:<version>`) and replays them onto the cached copy —
// O(changes) instead of O(state). A full response (shard restarted, no
// delta support, history evicted) replaces the warm view wholesale. A
// network or HTTP failure degrades the shard for this query and leaves
// the warm view untouched, ready for the next delta.
func (g *Gateway) fetchShard(ctx context.Context, url string) (*corpus.AggSnapshot, *report.Set, error) {
	if g.cfg.DisableDeltaSync {
		res, err := g.fetchState(ctx, url, "")
		if err != nil {
			return nil, nil, err
		}
		if res.delta != nil {
			return nil, nil, fmt.Errorf("shard sent a delta to an unconditional snapshot request")
		}
		return res.snap, res.set, nil
	}
	ws := g.shards.viewFor(url)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		since := ""
		if ws.valid {
			since = fmt.Sprintf("%d:%d", ws.epoch, ws.version)
		}
		res, err := g.fetchState(ctx, url, since)
		if err != nil {
			return nil, nil, err
		}
		if res.delta == nil {
			g.fullPulls.Inc()
			if res.hasState {
				ws.valid, ws.epoch, ws.version = true, res.epoch, res.version
				ws.snap, ws.window = res.snap, res.set.Reports
				snap, set := ws.clone()
				return snap, set, nil
			}
			// The shard serves no state versions (delta disabled there);
			// nothing to keep warm.
			ws.valid, ws.snap, ws.window = false, nil, nil
			return res.snap, res.set, nil
		}
		seg := res.delta
		if ws.valid && seg.Epoch == ws.epoch && seg.From == ws.version {
			window, err := corpus.ApplyDelta(ws.snap, ws.window, seg)
			if err == nil {
				ws.window, ws.version = window, seg.To
				g.deltaPulls.Inc()
				snap, set := ws.clone()
				return snap, set, nil
			}
			g.logf("shard: gateway: delta apply failed for %s: %v; resyncing", url, err)
		}
		// The delta does not continue the state we hold (or failed to
		// apply): drop the warm view and resync with a full fetch.
		ws.valid, ws.snap, ws.window = false, nil, nil
		g.deltaFallbacks.Inc()
	}
	return nil, nil, fmt.Errorf("shard answered an unconditional snapshot request with a delta")
}

// shardResponse is one decoded /v1/snapshot response: either a full
// state export (snap+set) or a delta segment, plus the state version
// headers when the shard serves them.
type shardResponse struct {
	snap           *corpus.AggSnapshot
	set            *report.Set
	delta          *corpus.DeltaSegment
	epoch, version uint64
	hasState       bool
}

// fetchState performs one GET /v1/snapshot (optionally conditional on
// since) and decodes whichever body the shard chose to send, validating
// dimensions and fingerprint against the gateway's plan.
func (g *Gateway) fetchState(ctx context.Context, url, since string) (*shardResponse, error) {
	target := url + "/v1/snapshot"
	if since != "" {
		target += "?since=" + since
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("GET /v1/snapshot: %d: %s", resp.StatusCode, body)
	}
	out := &shardResponse{}
	if eh, vh := resp.Header.Get("X-CBI-State-Epoch"), resp.Header.Get("X-CBI-State-Version"); eh != "" && vh != "" {
		e, err1 := strconv.ParseUint(eh, 10, 64)
		v, err2 := strconv.ParseUint(vh, 10, 64)
		if err1 == nil && err2 == nil && e != 0 {
			out.epoch, out.version, out.hasState = e, v, true
		}
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("snapshot gzip: %v", err)
	}
	defer gz.Close()
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/x-cbi-delta") {
		seg, err := corpus.ReadDeltaSegment(gz)
		if err != nil {
			return nil, fmt.Errorf("delta segment: %v", err)
		}
		if seg.NumSites != g.cfg.NumSites || seg.NumPreds != g.cfg.NumPreds {
			return nil, fmt.Errorf("shard delta dimensions %dx%d do not match gateway %dx%d",
				seg.NumSites, seg.NumPreds, g.cfg.NumSites, g.cfg.NumPreds)
		}
		if g.cfg.Fingerprint != 0 && seg.Fingerprint != 0 && seg.Fingerprint != g.cfg.Fingerprint {
			return nil, fmt.Errorf("shard delta fingerprint %016x does not match gateway %016x",
				seg.Fingerprint, g.cfg.Fingerprint)
		}
		out.delta = seg
		return out, nil
	}
	snap, set, err := corpus.ReadMergeSegment(gz)
	if err != nil {
		return nil, err
	}
	if snap.NumSites != g.cfg.NumSites || snap.NumPreds != g.cfg.NumPreds {
		return nil, fmt.Errorf("shard dimensions %dx%d do not match gateway %dx%d",
			snap.NumSites, snap.NumPreds, g.cfg.NumSites, g.cfg.NumPreds)
	}
	if g.cfg.Fingerprint != 0 && snap.Fingerprint != 0 && snap.Fingerprint != g.cfg.Fingerprint {
		return nil, fmt.Errorf("shard fingerprint %016x does not match gateway %016x",
			snap.Fingerprint, g.cfg.Fingerprint)
	}
	out.snap, out.set = snap, set
	return out, nil
}

// merge folds the live shards' states into one snapshot and one run
// set. It returns the merged state plus how many shards answered; an
// error only when *no* shard answered.
func (g *Gateway) merge(states []shardState) (*corpus.AggSnapshot, *report.Set, int, error) {
	start := time.Now()
	defer func() { g.mergeSeconds.ObserveDuration(time.Since(start)) }()
	merged := corpus.NewAggSnapshot(g.cfg.NumSites, g.cfg.NumPreds)
	merged.Fingerprint = g.cfg.Fingerprint
	set := &report.Set{NumSites: g.cfg.NumSites, NumPreds: g.cfg.NumPreds}
	live := 0
	for i, st := range states {
		if st.err != nil {
			g.logf("shard: gateway: shard %d unavailable: %v", i, st.err)
			continue
		}
		if err := corpus.MergeAggSnapshot(merged, st.snap); err != nil {
			g.logf("shard: gateway: shard %d snapshot rejected: %v", i, err)
			continue
		}
		set.Reports = append(set.Reports, st.set.Reports...)
		live++
	}
	if live == 0 {
		return nil, nil, 0, fmt.Errorf("no shard answered")
	}
	return merged, set, live, nil
}

// intQuery mirrors the collector's query parsing exactly: absent means
// the default, malformed is a 400, and negative values pass through
// (k<=0 means "no cap" downstream) — so the gateway is a drop-in for a
// single collector on the read path.
func intQuery(w http.ResponseWriter, req *http.Request, key string, def int) (int, bool) {
	v := req.URL.Query().Get(key)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		http.Error(w, "bad "+key, http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

func (g *Gateway) handleScores(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k, ok := intQuery(w, req, "k", 20)
	if !ok {
		return
	}
	merged, _, _, err := g.merge(g.fetchAll(req.Context()))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	ranked := core.TopKImportance(merged.ToAgg(g.cfg.SiteOf), k)
	writeJSON(w, collector.ScoreEntries(ranked))
}

func (g *Gateway) handlePredictors(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k, ok := intQuery(w, req, "k", 0)
	if !ok {
		return
	}
	affinityK, ok := intQuery(w, req, "affinity", 0)
	if !ok {
		return
	}
	engineName := req.URL.Query().Get("engine")
	if engineName == "" {
		engineName = core.DefaultEngineName
	}
	eng, found := core.EngineByName(engineName)
	if !found {
		http.Error(w, collector.UnknownEngineError(engineName), http.StatusBadRequest)
		return
	}
	_, set, _, err := g.merge(g.fetchAll(req.Context()))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	g.engineRequests.With(engineName).Inc()
	in := core.Input{Set: set, SiteOf: g.cfg.SiteOf}
	if engineName == core.DefaultEngineName {
		// Cause isolation runs over the union of the shards' retained
		// run logs — the same BuildPredictors path a single collector
		// uses, so the output shape and tie-breaking match exactly.
		writeJSON(w, collector.BuildPredictors(in, k, affinityK))
		return
	}
	// Alternative engines score the same merged input; every counting
	// engine is order-independent, so the answer matches a single
	// collector holding the union.
	writeJSON(w, collector.EngineEntries(eng.Score(in, k)))
}

// handleCompare mirrors the collector's GET /v1/compare over the
// merged shard union: every named engine scores one snapshot of the
// fleet-wide run log, with pairwise rank agreement.
func (g *Gateway) handleCompare(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k, ok := intQuery(w, req, "k", 20)
	if !ok || k < 0 {
		if ok {
			http.Error(w, "bad k", http.StatusBadRequest)
		}
		return
	}
	names, errMsg := collector.ParseEngines(req.URL.Query().Get("engines"))
	if errMsg != "" {
		http.Error(w, errMsg, http.StatusBadRequest)
		return
	}
	_, set, _, err := g.merge(g.fetchAll(req.Context()))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for _, n := range names {
		g.engineRequests.With(n).Inc()
	}
	in := core.Input{Set: set, SiteOf: g.cfg.SiteOf}
	writeJSON(w, collector.CompareEngines(in, names, k))
}

// GatewayStats is the gateway's GET /v1/stats response: the merged
// run/counter totals plus per-shard health. Stale marks a response
// whose totals were served from the gateway's cache because no shard
// answered the fan-out (degraded_shards tells the current health).
type GatewayStats struct {
	NumSites       int      `json:"num_sites"`
	NumPreds       int      `json:"num_preds"`
	Fingerprint    uint64   `json:"fingerprint"`
	Runs           int64    `json:"runs"`
	Failing        int64    `json:"failing"`
	Successful     int64    `json:"successful"`
	RunLogRuns     int      `json:"runlog_runs"`
	PlanVersion    uint64   `json:"plan_version"`
	Shards         int      `json:"shards"`
	DegradedShards int      `json:"degraded_shards"`
	Stale          bool     `json:"stale,omitempty"`
	ShardErrors    []string `json:"shard_errors,omitempty"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	states := g.fetchAll(req.Context())
	st := GatewayStats{
		NumSites:    g.cfg.NumSites,
		NumPreds:    g.cfg.NumPreds,
		Fingerprint: g.cfg.Fingerprint,
		PlanVersion: g.planStore.Version(),
		Shards:      len(states),
	}
	for i, s := range states {
		if s.err != nil {
			st.DegradedShards++
			st.ShardErrors = append(st.ShardErrors, fmt.Sprintf("shard %d: %v", i, s.err))
			continue
		}
		st.Runs += s.snap.NumF + s.snap.NumS
		st.Failing += s.snap.NumF
		st.Successful += s.snap.NumS
		st.RunLogRuns += len(s.set.Reports)
	}
	if st.DegradedShards == len(states) {
		// Every shard is down: the freshly computed totals are all
		// zeros, which an operator's dashboard would read as "the data
		// vanished". Serve the last known totals instead, marked stale
		// with the current shard errors attached, and count the
		// degradation. Only when there has never been a successful
		// fan-out is an all-zero 503 the honest answer.
		g.degradedResponses.Inc()
		g.statsMu.Lock()
		cached := g.lastStats
		g.statsMu.Unlock()
		if cached != nil {
			resp := *cached
			resp.DegradedShards = st.DegradedShards
			resp.Stale = true
			resp.ShardErrors = st.ShardErrors
			writeJSON(w, resp)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSON(w, st)
		return
	}
	snapshot := st
	snapshot.ShardErrors = nil
	g.statsMu.Lock()
	g.lastStats = &snapshot
	g.statsMu.Unlock()
	writeJSON(w, st)
}

// handleHealthz reports 200 while at least one shard answers its own
// health check.
func (g *Gateway) handleHealthz(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := context.WithTimeout(req.Context(), g.cfg.Timeout)
	defer cancel()
	shards := g.shards.list()
	ch := make(chan bool, len(shards))
	for _, url := range shards {
		go func(url string) {
			r, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
			if err != nil {
				ch <- false
				return
			}
			resp, err := g.hc.Do(r)
			if err != nil {
				ch <- false
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ch <- resp.StatusCode == http.StatusOK
		}(url)
	}
	for range shards {
		if <-ch {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok\n")
			return
		}
	}
	http.Error(w, "no live shard", http.StatusServiceUnavailable)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
