package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/corpus"
)

// TestMovedRangesExactArcs pins the arc math an elastic resize rests
// on: movedRanges must classify every point of the hash circle — a key
// is in some moved range exactly when its owner differs between the
// two rings, and then the range's (from, to) pair names both owners.
func TestMovedRangesExactArcs(t *testing.T) {
	cases := []struct {
		name      string
		old, next []int
	}{
		{"add", []int{0, 1, 2}, []int{0, 1, 2, 3}},
		{"remove", []int{0, 1, 2}, []int{0, 2}},
		{"swap", []int{0, 1}, []int{0, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := newRingOver(tc.old, 16)
			next := newRingOver(tc.next, 16)
			moved := movedRanges(old, next)
			for i := 0; i < 5000; i++ {
				h := hashKey(fmt.Sprintf("key-%d", i))
				from, to := old.ownerOfHash(h), next.ownerOfHash(h)
				var hit *[2]int
				for pair, ranges := range moved {
					if corpus.InRanges(h, ranges) {
						if hit != nil {
							t.Fatalf("hash %x in two moved ranges: %v and %v", h, *hit, pair)
						}
						p := pair
						hit = &p
					}
				}
				if from == to {
					if hit != nil {
						t.Fatalf("hash %x owner unchanged (%d) but in moved range %v", h, from, *hit)
					}
					continue
				}
				if hit == nil {
					t.Fatalf("hash %x moves %d→%d but is in no moved range", h, from, to)
				}
				if hit[0] != from || hit[1] != to {
					t.Fatalf("hash %x moves %d→%d but its range says %v", h, from, to, *hit)
				}
			}
		})
	}
}

// TestRingSlotStability pins the property that makes a resize move only
// the minimum: vnode positions derive from the slot number alone, so
// adding a slot reassigns arcs only *to* the newcomer and removing one
// reassigns arcs only *from* the victim.
func TestRingSlotStability(t *testing.T) {
	base := newRingOver([]int{0, 1, 2}, 16)
	grown := newRingOver([]int{0, 1, 2, 3}, 16)
	shrunk := newRingOver([]int{0, 2}, 16)
	for i := 0; i < 5000; i++ {
		h := hashKey(fmt.Sprintf("stable-%d", i))
		if g := grown.ownerOfHash(h); g != 3 && g != base.ownerOfHash(h) {
			t.Fatalf("hash %x moved %d→%d on grow; only the newcomer may gain arcs",
				h, base.ownerOfHash(h), g)
		}
		if b := base.ownerOfHash(h); b != 1 && shrunk.ownerOfHash(h) != b {
			t.Fatalf("hash %x moved %d→%d on shrink; only the victim's arcs may move",
				h, b, shrunk.ownerOfHash(h))
		}
	}
}

// postRing drives the router's resize state machine over HTTP.
func postRing(t *testing.T, routerURL, action, backendURL string) RingStatus {
	t.Helper()
	body, err := json.Marshal(map[string]string{"action": action, "url": backendURL})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerURL+"/v1/ring", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RingStatus
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ring %s = %d", action, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// keyInRanges finds a client id whose hash falls in the given arcs —
// deterministic, since both the candidate ids and the ring are.
func keyInRanges(t *testing.T, ranges []corpus.KeyRange) string {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		key := fmt.Sprintf("mig-key-%d", i)
		if corpus.InRanges(corpus.KeyHash(key), ranges) {
			return key
		}
	}
	t.Fatal("no candidate key hashes into the migration's ranges")
	return ""
}

// TestRouterMigrationBuffering pins the pause-state routing contract:
// writes into a paused range are acked 202 and parked (not delivered
// anywhere), a full buffer sheds 429 with a Retry-After, and cutover
// delivers every parked write to the new owner exactly once.
func TestRouterMigrationBuffering(t *testing.T) {
	set, siteOf := syntheticInput(4)
	cfg := collector.Config{NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf}
	old0, ts0 := startCollector(t, cfg)
	old1, ts1 := startCollector(t, cfg)
	newcomer, ts2 := startCollector(t, cfg)

	router, err := NewRouter(RouterConfig{
		Backends:        []string{ts0.URL, ts1.URL},
		MigrationBuffer: 2,
		HealthInterval:  50 * time.Millisecond,
		Logf:            quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	st := postRing(t, rt.URL, "add", ts2.URL)
	if st.Resize == nil || len(st.Resize.Migrations) == 0 {
		t.Fatalf("add staged no migrations: %+v", st)
	}
	var allRanges []corpus.KeyRange
	for _, mg := range st.Resize.Migrations {
		if mg.To != st.Resize.Slot {
			t.Fatalf("add migration %s targets slot %d, not the newcomer %d", mg.ID, mg.To, st.Resize.Slot)
		}
		allRanges = append(allRanges, mg.Ranges...)
	}
	key := keyInRanges(t, allRanges)
	postRing(t, rt.URL, "pause", "")

	// Two writes into the paused range: acked 202, parked, delivered
	// nowhere yet.
	ctx := context.Background()
	client := collector.NewClient(rt.URL, set.NumSites, set.NumPreds,
		collector.WithBatchSize(1), collector.WithClientID(key))
	for i := 0; i < 2; i++ {
		if err := client.Add(ctx, set.Reports[i]); err != nil {
			t.Fatal(err)
		}
		if err := client.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st = postRing(t, rt.URL, "pause", "") // re-posting pause is idempotent; returns status
	buffered := 0
	for _, mg := range st.Resize.Migrations {
		buffered += mg.Buffered
	}
	if buffered != 2 {
		t.Fatalf("parked %d writes, want 2: %+v", buffered, st.Resize)
	}

	// A third write overflows the 2-slot buffer: 429 with a Retry-After,
	// and never an ack — the client still owns it.
	req, err := http.NewRequest(http.MethodPost, rt.URL+"/v1/reports", strings.NewReader("overflow"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-CBI-Client-ID", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("buffer-overflow write = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("buffer-overflow 429 carries no Retry-After")
	}

	if n := old0.StatsNow().ReportsEnqueued + old1.StatsNow().ReportsEnqueued + newcomer.StatsNow().ReportsEnqueued; n != 0 {
		t.Fatalf("%d parked reports leaked to a collector before cutover", n)
	}

	postRing(t, rt.URL, "cutover", "")
	postRing(t, rt.URL, "commit", "")
	if err := router.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitAppliedTotal(t, []*collector.Server{newcomer}, 2)
	if n := old0.StatsNow().ReportsApplied + old1.StatsNow().ReportsApplied; n != 0 {
		t.Fatalf("cutover delivered %d parked reports to the old owners", n)
	}
	if n := newcomer.StatsNow().ReportsApplied; n != 2 {
		t.Fatalf("newcomer applied %d parked reports, want exactly 2", n)
	}

	rst := router.StatsNow()
	if rst.Buffered != 2 || rst.BufferRejects != 1 || rst.Dropped != 0 {
		t.Fatalf("router counters disagree with the parked/shed/flushed story: %+v", rst)
	}
	if rst.RingVersion != 2 {
		t.Fatalf("ring version after commit = %d, want 2", rst.RingVersion)
	}
}

// TestRingAdminAuth pins the topology-change gate: with an API key
// configured, GET /v1/ring stays open (controllers and gateways read
// it) but POST requires the Bearer key.
func TestRingAdminAuth(t *testing.T) {
	_, ts := startCollector(t, collector.Config{NumSites: 2, NumPreds: 4, SiteOf: []int32{0, 0, 1, 1}})
	router, err := NewRouter(RouterConfig{
		Backends: []string{ts.URL},
		APIKey:   "sesame",
		Logf:     quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	resp, err := http.Get(rt.URL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/ring = %d, want 200 (reads are open)", resp.StatusCode)
	}

	body := `{"action":"add","url":"http://example.invalid"}`
	resp, err = http.Post(rt.URL+"/v1/ring", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated POST /v1/ring = %d, want 401", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodPost, rt.URL+"/v1/ring", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated POST /v1/ring = %d, want 200", resp.StatusCode)
	}
}

// TestRouterRateLimit pins the per-key write throttle: each API key has
// its own bucket, a limited request gets 429 with a Retry-After, and
// the refusals are counted.
func TestRouterRateLimit(t *testing.T) {
	_, ts := startCollector(t, collector.Config{NumSites: 2, NumPreds: 4, SiteOf: []int32{0, 0, 1, 1}})
	router, err := NewRouter(RouterConfig{
		Backends:  []string{ts.URL},
		RateLimit: 0.001, // effectively: the burst and nothing more
		RateBurst: 1,
		Logf:      quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	post := func(auth string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, rt.URL+"/v1/reports", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", auth)
		req.Header.Set("X-CBI-Client-ID", "rl-client")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("Bearer key-a"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first write for key-a = %d, want 202", resp.StatusCode)
	}
	resp := post("Bearer key-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second write for key-a = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 carries no Retry-After")
	}
	if resp := post("Bearer key-b"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first write for key-b = %d, want 202 (buckets are per key)", resp.StatusCode)
	}
	if n := router.StatsNow().RateLimited; n != 1 {
		t.Fatalf("rate_limited counter = %d, want 1", n)
	}
}

// TestGatewayRingReload pins the elastic read path: a gateway pointed
// at the router's ring (no static shard list) adopts a committed
// resize's new shard set within one refresh interval.
func TestGatewayRingReload(t *testing.T) {
	set, siteOf := syntheticInput(4)
	cfg := collector.Config{NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf}
	_, ts0 := startCollector(t, cfg)
	_, ts1 := startCollector(t, cfg)

	router, err := NewRouter(RouterConfig{
		Backends:       []string{ts0.URL},
		HealthInterval: 50 * time.Millisecond,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	gw, err := NewGateway(GatewayConfig{
		RingFrom:    rt.URL,
		RingRefresh: 30 * time.Millisecond,
		NumSites:    set.NumSites,
		NumPreds:    set.NumPreds,
		SiteOf:      siteOf,
		Timeout:     2 * time.Second,
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	if got := gw.shards.list(); len(got) != 1 || got[0] != ts0.URL {
		t.Fatalf("gateway boot shard set = %v, want just %s from the ring", got, ts0.URL)
	}

	// Grow the ring (no data to move — empty collectors) and watch the
	// gateway pick the newcomer up without a restart.
	postRing(t, rt.URL, "add", ts1.URL)
	postRing(t, rt.URL, "pause", "")
	postRing(t, rt.URL, "cutover", "")
	postRing(t, rt.URL, "commit", "")

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := gw.shards.list(); len(got) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never adopted the resized shard set: %v", gw.shards.list())
		}
		time.Sleep(10 * time.Millisecond)
	}
	var metrics strings.Builder
	gw.Metrics().WritePrometheus(&metrics)
	if !strings.Contains(metrics.String(), "cbi_gateway_shards 2") {
		t.Fatalf("cbi_gateway_shards gauge does not report the resized set:\n%s", metrics.String())
	}
}
