package shard

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/report"
)

// planPhaseReports builds n synthetic post-sampling reports where site
// i is observed with probability pObs[i] — a controllable observation
// profile so successive planning windows actually move the rates.
func planPhaseReports(seed int64, n int, pObs []float64) []*report.Report {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*report.Report, 0, n)
	for i := 0; i < n; i++ {
		r := &report.Report{Failed: rng.Intn(5) == 0}
		for s, p := range pObs {
			if rng.Float64() < p {
				r.ObservedSites = append(r.ObservedSites, int32(s))
			}
		}
		if len(r.ObservedSites) == 0 {
			r.ObservedSites = []int32{0}
		}
		out = append(out, r)
	}
	return out
}

// TestPlanPropagationUnderShardFailover is the sharded tier's plan
// convergence property: a gateway plans from the merged fleet view and
// pushes to every shard; a router forwards /v1/plan to the gateway;
// and when the shard owning a client dies mid-experiment, the rerouted
// client still converges to the same strictly-increasing plan version
// the surviving shard and gateway agree on.
func TestPlanPropagationUnderShardFailover(t *testing.T) {
	const (
		numSites = 8
		numPreds = 8
		phase    = 300
	)
	siteOf := make([]int32, numPreds)
	for p := range siteOf {
		siteOf[p] = int32(p)
	}
	cfg := collector.Config{
		NumSites: numSites, NumPreds: numPreds, SiteOf: siteOf,
		PlanMinRuns: 10,
	}

	shards := make([]*collector.Server, 2)
	backends := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range shards {
		shards[i], backends[i] = startCollector(t, cfg)
		urls[i] = backends[i].URL
	}

	gwSrv, err := NewGateway(GatewayConfig{
		Shards:   urls,
		NumSites: numSites, NumPreds: numPreds, SiteOf: siteOf,
		Timeout: 5 * time.Second,
		// Planner mode, driven manually: PlanTarget 2 keeps moderate
		// sites on fractional rates, so each shifted window re-plans.
		PlanEvery:   time.Hour,
		PlanTarget:  2,
		PlanMinRate: 0.01,
		PlanMinRuns: 10,
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gwSrv.Close)
	gw := httptest.NewServer(gwSrv.Handler())
	t.Cleanup(gw.Close)

	router, err := NewRouter(RouterConfig{
		Backends:       urls,
		HealthInterval: 50 * time.Millisecond,
		PlanFrom:       gw.URL,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	ctx := context.Background()
	client := collector.NewClient(rt.URL, numSites, numPreds,
		collector.WithBatchSize(32), collector.WithClientID("plan-client"))

	// The bootstrap plan reaches the client through the router before
	// any data flows.
	p, _, err := client.FetchPlan(ctx)
	if err != nil {
		t.Fatalf("bootstrap fetch through router: %v", err)
	}
	if p.Version != 1 {
		t.Fatalf("bootstrap plan v%d, want v1", p.Version)
	}

	stream := func(reports []*report.Report) {
		t.Helper()
		for _, r := range reports {
			if err := client.Add(ctx, r); err != nil {
				t.Fatal(err)
			}
		}
		if err := client.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if err := router.Drain(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	stream(planPhaseReports(1, phase, []float64{1, 0.7, 0.3, 0.5, 0.2, 0.6, 0.4, 0.8}))
	waitAppliedTotal(t, shards, phase)

	p2, published := gwSrv.Replan(ctx)
	if !published {
		t.Fatal("gateway re-plan over the first window did not publish")
	}
	if p2.Version != 2 || p2.Source != "gateway" {
		t.Fatalf("gateway plan: %+v", p2)
	}
	// The push delivered the plan to every shard.
	for i, s := range shards {
		if v := s.Plan().Version; v != 2 {
			t.Fatalf("shard %d plan v%d after push, want v2", i, v)
		}
	}
	// And the router forwards the gateway's view to clients.
	p, changed, err := client.FetchPlan(ctx)
	if err != nil || !changed || p.Version != 2 {
		t.Fatalf("client fetch after re-plan: v%d changed=%v err=%v", p.Version, changed, err)
	}

	// Kill the shard that owns this client; the ring reroutes the
	// client's traffic to the survivor.
	owner := 0
	if shards[1].StatsNow().ReportsApplied > shards[0].StatsNow().ReportsApplied {
		owner = 1
	}
	if n := shards[owner].StatsNow().ReportsApplied; n != phase {
		t.Fatalf("expected one shard to own all %d reports, owner has %d", phase, n)
	}
	survivor := 1 - owner
	backends[owner].Close()
	if err := shards[owner].Close(); err != nil {
		t.Fatal(err)
	}

	stream(planPhaseReports(2, phase, []float64{1, 0.2, 0.8, 0.3, 0.7, 0.1, 0.9, 0.4}))
	waitAppliedTotal(t, []*collector.Server{shards[survivor]}, phase)

	p3, published := gwSrv.Replan(ctx)
	if !published {
		t.Fatal("gateway re-plan after failover did not publish")
	}
	if p3.Version <= p2.Version {
		t.Fatalf("plan version not strictly increasing: v%d after v%d", p3.Version, p2.Version)
	}

	// Convergence: the rerouted client, the surviving shard, the
	// gateway, and the router all see the same new version.
	p, changed, err = client.FetchPlan(ctx)
	if err != nil || !changed {
		t.Fatalf("client fetch after failover: changed=%v err=%v", changed, err)
	}
	if p.Version != p3.Version {
		t.Fatalf("client plan v%d, gateway published v%d", p.Version, p3.Version)
	}
	if v := shards[survivor].Plan().Version; v != p3.Version {
		t.Fatalf("surviving shard plan v%d, want v%d", v, p3.Version)
	}
	var gst GatewayStats
	getJSON(t, gw.URL+"/v1/stats", &gst)
	if gst.PlanVersion != p3.Version {
		t.Fatalf("gateway stats plan v%d, want v%d", gst.PlanVersion, p3.Version)
	}

	// The saturated always-observed site held its floor rate; the plan
	// raised genuinely under-observed sites instead.
	if p.Rates[0] != 0.01 {
		t.Fatalf("saturated site 0 rate = %v, want held at the 0.01 floor", p.Rates[0])
	}

	// A fresh client routed around the dead shard gets the same plan.
	fresh := collector.NewClient(rt.URL, numSites, numPreds,
		collector.WithClientID("late-joiner"))
	pf, _, err := fresh.FetchPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Version != p3.Version {
		t.Fatalf("late joiner plan v%d, want v%d", pf.Version, p3.Version)
	}
}

// TestGatewayPlanProxyMode: a gateway with no planner refreshes from
// its shards on GET /v1/plan, so it serves the fleet's newest version
// rather than forking its own chain — and a restarted gateway re-adopts
// the fleet version the same way.
func TestGatewayPlanProxyMode(t *testing.T) {
	const (
		numSites = 4
		numPreds = 4
	)
	siteOf := []int32{0, 1, 2, 3}
	srv, ts := startCollector(t, collector.Config{
		NumSites: numSites, NumPreds: numPreds, SiteOf: siteOf,
		PlanMinRuns: 5,
	})
	defer srv.Close()

	// Advance the shard's own plan by re-planning over a small window.
	for _, r := range planPhaseReports(3, 50, []float64{1, 0.5, 0.2, 0}) {
		srv.Ingest(r)
	}
	p, published := srv.Replan()
	if !published {
		t.Fatal("collector re-plan did not publish")
	}
	if p.Version != 2 {
		t.Fatalf("collector plan v%d, want v2", p.Version)
	}

	gwSrv, err := NewGateway(GatewayConfig{
		Shards:   []string{ts.URL},
		NumSites: numSites, NumPreds: numPreds, SiteOf: siteOf,
		Timeout: 5 * time.Second,
		Logf:    quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()
	gw := httptest.NewServer(gwSrv.Handler())
	defer gw.Close()

	client := collector.NewClient(gw.URL, numSites, numPreds)
	got, _, err := client.FetchPlan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 {
		t.Fatalf("proxy-mode gateway served v%d, want the shard's v2", got.Version)
	}
	if fmt.Sprintf("%v", got.Rates) != fmt.Sprintf("%v", p.Rates) {
		t.Fatalf("proxied rates %v differ from the shard's %v", got.Rates, p.Rates)
	}
}
