// Ring admin API: GET /v1/ring exposes the serving topology and any
// in-flight resize (enough for a migration controller to resume after
// a crash); POST /v1/ring drives the resize state machine:
//
//	add url      stage a resize that brings a new backend into the ring
//	remove url   stage a resize that drains a backend out of the ring
//	pause        flip the resize's migrations to buffering (writes into
//	             the moving ranges park router-side; sources stop moving)
//	cutover      flip them to done and flush the parked writes to each
//	             migration's destination
//	commit       adopt the target ring, bump the ring version, and (for
//	             remove) deactivate the drained backend
//
// The machine is deliberately dumb: it only routes. The data movement
// between pause and cutover — export, merge, evict, residual — is the
// migration controller's job (internal/migrate); splitting the two
// keeps the router's hot path free of migration I/O and lets a crashed
// controller resume from GET /v1/ring alone.
package shard

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cbi/internal/corpus"
)

// RingBackend is one backend's row in GET /v1/ring.
type RingBackend struct {
	Slot       int    `json:"slot"`
	URL        string `json:"url"`
	Up         bool   `json:"up"`
	Active     bool   `json:"active"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int64  `json:"inflight"`
}

// RingMigration is one migration's row in GET /v1/ring.
type RingMigration struct {
	ID       string            `json:"id"`
	From     int               `json:"from"`
	To       int               `json:"to"`
	State    string            `json:"state"`
	Ranges   []corpus.KeyRange `json:"ranges"`
	Buffered int               `json:"buffered"`
}

// RingResize describes the in-flight resize in GET /v1/ring.
type RingResize struct {
	Action     string          `json:"action"`
	Slot       int             `json:"slot"`
	Migrations []RingMigration `json:"migrations"`
}

// RingStatus is the GET /v1/ring response.
type RingStatus struct {
	Version  uint64        `json:"version"`
	Vnodes   int           `json:"vnodes"`
	Backends []RingBackend `json:"backends"`
	Resize   *RingResize   `json:"resize,omitempty"`
}

// ringRequest is the POST /v1/ring body.
type ringRequest struct {
	Action string `json:"action"`
	URL    string `json:"url,omitempty"`
}

func (r *Router) handleRing(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.ringStatus())
	case http.MethodPost:
		if !r.authorizeRing(w, req) {
			return
		}
		var rr ringRequest
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&rr); err != nil {
			http.Error(w, "decoding request: "+err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		switch rr.Action {
		case "add":
			err = r.resizeAdd(rr.URL)
		case "remove":
			err = r.resizeRemove(rr.URL)
		case "pause":
			err = r.resizePause()
		case "cutover":
			err = r.resizeCutover()
		case "commit":
			err = r.resizeCommit()
		default:
			http.Error(w, fmt.Sprintf("unknown action %q", rr.Action), http.StatusBadRequest)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.ringStatus())
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// authorizeRing gates topology changes behind the router's API key
// (Bearer). With no key configured the endpoint is open — matching the
// collector's write-auth convention for dev deployments.
func (r *Router) authorizeRing(w http.ResponseWriter, req *http.Request) bool {
	if r.cfg.APIKey == "" {
		return true
	}
	tok, ok := strings.CutPrefix(req.Header.Get("Authorization"), "Bearer ")
	if ok && subtle.ConstantTimeCompare([]byte(tok), []byte(r.cfg.APIKey)) == 1 {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="cbi"`)
	http.Error(w, "unauthorized", http.StatusUnauthorized)
	return false
}

// ringStatus snapshots the topology for GET /v1/ring.
func (r *Router) ringStatus() RingStatus {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	st := RingStatus{Version: r.ringVersion, Vnodes: r.cfg.Vnodes}
	if st.Vnodes <= 0 {
		st.Vnodes = defaultVnodes
	}
	for _, b := range r.backends {
		st.Backends = append(st.Backends, RingBackend{
			Slot:       b.slot,
			URL:        b.url,
			Up:         b.up.Load(),
			Active:     b.active.Load(),
			QueueDepth: len(b.queue),
			Inflight:   b.inflight.Load(),
		})
	}
	if r.resize != nil {
		rs := &RingResize{Action: r.resize.action, Slot: r.resize.slot}
		for _, mg := range r.resize.migs {
			mg.mu.Lock()
			buffered := len(mg.buf)
			mg.mu.Unlock()
			rs.Migrations = append(rs.Migrations, RingMigration{
				ID:       mg.id,
				From:     mg.from,
				To:       mg.to,
				State:    migStateName(mg.state.Load()),
				Ranges:   mg.ranges,
				Buffered: buffered,
			})
		}
		st.Resize = rs
	}
	return st
}

// activeSlotsLocked lists the slots currently on the serving ring.
func (r *Router) activeSlotsLocked() []int {
	slots := make([]int, 0, len(r.backends))
	for _, b := range r.backends {
		if b.active.Load() {
			slots = append(slots, b.slot)
		}
	}
	return slots
}

// buildMigrations turns a movedRanges map into migration objects in
// deterministic (from, then to) order, in the forwarding state.
func (r *Router) buildMigrations(moved map[[2]int][]corpus.KeyRange) []*migration {
	pairs := make([][2]int, 0, len(moved))
	for p := range moved {
		pairs = append(pairs, p)
	}
	for i := 1; i < len(pairs); i++ { // tiny set; insertion sort
		for j := i; j > 0 && (pairs[j][0] < pairs[j-1][0] ||
			(pairs[j][0] == pairs[j-1][0] && pairs[j][1] < pairs[j-1][1])); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	migs := make([]*migration, 0, len(pairs))
	for _, p := range pairs {
		migs = append(migs, &migration{
			id:     fmt.Sprintf("m%d-%d-%d", r.ringVersion+1, p[0], p[1]),
			from:   p[0],
			to:     p[1],
			ranges: moved[p],
		})
	}
	return migs
}

// resizeAdd stages a resize bringing a new backend into the ring. The
// newcomer starts taking writes only for ranges already cut over; until
// then its arcs keep forwarding to their current owners, whose run logs
// retain what the controller will stream.
func (r *Router) resizeAdd(url string) error {
	if url == "" {
		return fmt.Errorf("add requires a backend url")
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if r.resize != nil {
		return fmt.Errorf("a %s resize is already in flight; commit it first", r.resize.action)
	}
	for _, b := range r.backends {
		if b.url == url && b.active.Load() {
			return fmt.Errorf("backend %s is already on the ring (slot %d)", url, b.slot)
		}
	}
	// addBackendLocked marks the newcomer active so it can accept
	// cutover traffic; the *serving* ring (r.ring) excludes it until
	// commit, so until then its arcs still forward to their current
	// owners.
	b := r.addBackendLocked(url)
	next := newRingOver(r.activeSlotsLocked(), r.cfg.Vnodes)
	migs := r.buildMigrations(movedRanges(r.ring, next))
	r.resize = &resizeOp{action: "add", slot: b.slot, migs: migs}
	r.next = next
	r.logf("shard: router: staged add of %s as slot %d (%d migrations)", url, b.slot, len(migs))
	return nil
}

// resizeRemove stages a resize draining a backend out of the ring. The
// backend keeps serving its arcs until commit; the controller drains
// its state to the successors, then cutover routes the arcs onward.
func (r *Router) resizeRemove(url string) error {
	if url == "" {
		return fmt.Errorf("remove requires a backend url")
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if r.resize != nil {
		return fmt.Errorf("a %s resize is already in flight; commit it first", r.resize.action)
	}
	var victim *backend
	for _, b := range r.backends {
		if b.url == url && b.active.Load() {
			victim = b
			break
		}
	}
	if victim == nil {
		return fmt.Errorf("backend %s is not on the ring", url)
	}
	slots := r.activeSlotsLocked()
	if len(slots) <= 1 {
		return fmt.Errorf("cannot remove the last backend")
	}
	rest := make([]int, 0, len(slots)-1)
	for _, s := range slots {
		if s != victim.slot {
			rest = append(rest, s)
		}
	}
	next := newRingOver(rest, r.cfg.Vnodes)
	migs := r.buildMigrations(movedRanges(r.ring, next))
	r.resize = &resizeOp{action: "remove", slot: victim.slot, migs: migs}
	r.next = next
	r.logf("shard: router: staged remove of %s (slot %d, %d migrations)", url, victim.slot, len(migs))
	return nil
}

// resizePause flips every migration of the in-flight resize from
// forwarding to buffering: writes into the moving ranges park in
// bounded buffers so the sources stop accumulating new state and the
// controller can ship the final chunks against a fixed watermark.
func (r *Router) resizePause() error {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if r.resize == nil {
		return fmt.Errorf("no resize in flight")
	}
	for _, mg := range r.resize.migs {
		mg.state.CompareAndSwap(migForwarding, migBuffering)
	}
	return nil
}

// resizeCutover flips every paused migration to done and flushes its
// parked writes to the destination. The flush enqueues blocking — the
// writes were acked 202 when parked, so shedding them now would break
// the ack contract; the destination queue draining is what unblocks.
func (r *Router) resizeCutover() error {
	r.topoMu.RLock()
	if r.resize == nil {
		r.topoMu.RUnlock()
		return fmt.Errorf("no resize in flight")
	}
	migs := r.resize.migs
	next := r.next
	backends := r.backends[:len(r.backends):len(r.backends)]
	r.topoMu.RUnlock()

	for _, mg := range migs {
		prev := mg.state.Swap(migDone)
		if prev == migDone {
			continue
		}
		mg.mu.Lock()
		buf := mg.buf
		mg.buf = nil
		mg.mu.Unlock()
		dest := backends[mg.to]
		for _, j := range buf {
			j.order = orderVia(next, j.key, mg.to)
			j.attempt = 0
			select {
			case dest.queue <- j:
				dest.routed.Add(1)
			case <-r.ctx.Done():
				return fmt.Errorf("router shutting down")
			}
		}
		r.cutovers.Add(1)
		r.logf("shard: router: migration %s cut over (%d buffered writes flushed to slot %d)",
			mg.id, len(buf), mg.to)
	}
	return nil
}

// resizeCommit adopts the target ring: every migration must be done.
// For a remove, the drained backend is deactivated — its workers keep
// running so anything still queued drains, but no new writes route to
// it and health probes skip it.
func (r *Router) resizeCommit() error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if r.resize == nil {
		return fmt.Errorf("no resize in flight")
	}
	for _, mg := range r.resize.migs {
		if mg.state.Load() != migDone {
			return fmt.Errorf("migration %s is still %s; cutover first", mg.id, migStateName(mg.state.Load()))
		}
	}
	if r.resize.action == "remove" {
		r.backends[r.resize.slot].active.Store(false)
	}
	r.ring = r.next
	r.next = nil
	r.resize = nil
	r.ringVersion++
	r.logf("shard: router: resize committed; ring version now %d", r.ringVersion)
	return nil
}
