package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/report"
)

// getRaw fetches a URL and returns the raw response body, so two
// gateways can be compared bit for bit rather than post-decode.
func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestGatewayDeltaEquivalence pins the headline property of warm
// delta-synced gateway views: every response is bit-for-bit identical
// to a cold gateway that re-fetches full state from every shard on
// every query. The matrix covers quiescent pulls, incremental pulls
// after more ingest, a shard whose delta history is too small to hold
// the gap (forcing a full resync), concurrent ingest while queries
// stream, and a shard restart (new state epoch) that must invalidate
// the warm view rather than silently extend it.
func TestGatewayDeltaEquivalence(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	reports := in.Set.Reports[:900]
	base := collector.Config{
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
	}

	// Shard 0 checkpoints to disk so it can be restarted with its data
	// intact; shard 2 keeps an absurdly small delta history so any real
	// ingest gap overflows it and forces the full-snapshot fallback.
	cfg0 := base
	cfg0.SnapshotPath = filepath.Join(t.TempDir(), "shard0.snap")
	cfg2 := base
	cfg2.DeltaHistory = 4

	shard0, err := collector.New(withQuietLogf(cfg0))
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 sits behind a handler indirection so a restarted server
	// can take over the same URL — exactly what a supervisor restarting
	// a crashed collector on the same port looks like to the gateway.
	var h0 atomic.Value
	h0.Store(shard0.Handler())
	ts0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h0.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(ts0.Close)
	shard1, ts1 := startCollector(t, base)
	defer shard1.Close()
	shard2, ts2 := startCollector(t, cfg2)
	defer shard2.Close()
	shards := []*collector.Server{shard0, shard1, shard2}
	urls := []string{ts0.URL, ts1.URL, ts2.URL}

	gwCfg := GatewayConfig{
		Shards:      urls,
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
		Logf:        quietLogf,
	}
	warmGW, err := NewGateway(gwCfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := httptest.NewServer(warmGW.Handler())
	t.Cleanup(warm.Close)
	coldCfg := gwCfg
	coldCfg.DisableDeltaSync = true
	coldGW, err := NewGateway(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := httptest.NewServer(coldGW.Handler())
	t.Cleanup(cold.Close)

	// ingestSlice spreads one contiguous corpus slice round-robin over
	// the three shards, one synchronous batch per shard.
	ingestSlice := func(tag string, rs []*report.Report) {
		t.Helper()
		parts := make([][]*report.Report, len(shards))
		for i, r := range rs {
			parts[i%len(shards)] = append(parts[i%len(shards)], r)
		}
		for i, part := range parts {
			if err := shards[i].IngestBatch(fmt.Sprintf("%s-shard%d", tag, i), part); err != nil {
				t.Fatal(err)
			}
		}
	}
	// check asserts the warm gateway's responses are byte-identical to
	// the cold gateway's for both query endpoints.
	check := func(stage string) {
		t.Helper()
		for _, path := range []string{"/v1/scores?k=30", "/v1/predictors?k=0&affinity=3"} {
			got := getRaw(t, warm.URL+path)
			want := getRaw(t, cold.URL+path)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: warm gateway %s diverged from cold full fan-out:\n got %s\nwant %s",
					stage, path, got, want)
			}
			if len(got) <= 2 { // "[]" — a vacuous comparison
				t.Fatalf("%s: gateway %s returned no rows", stage, path)
			}
		}
	}

	// Quiescent baseline: first warm fan-out pulls full state from all
	// three shards, the second advances each warm view with an empty
	// delta.
	ingestSlice("p1", reports[:300])
	check("baseline")
	if full, delta := warmGW.fullPulls.Value(), warmGW.deltaPulls.Value(); full != 3 || delta != 3 {
		t.Fatalf("baseline pulls: %d full, %d delta; want 3 full (cold start) + 3 delta (no-change)", full, delta)
	}

	// Incremental: shards 0 and 1 answer with deltas; shard 2's
	// 4-event history cannot cover a 100-run gap, so it must resync
	// with a full snapshot — never a wrong delta.
	ingestSlice("p2", reports[300:600])
	check("incremental")
	if full, delta := warmGW.fullPulls.Value(), warmGW.deltaPulls.Value(); full != 4 || delta != 8 {
		t.Fatalf("incremental pulls: %d full, %d delta; want 4 full (history overflow) + 8 delta", full, delta)
	}

	// Concurrent churn: ingest streams into every shard while queries
	// hammer the warm gateway. No equivalence is asserted mid-flight
	// (the two gateways would observe different instants); the point is
	// that delta application races nothing (-race) and the first
	// quiescent check afterwards converges.
	var wg sync.WaitGroup
	churn := reports[600:900]
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var mine []*report.Report
			for j := i; j < len(churn); j += len(shards) {
				mine = append(mine, churn[j])
			}
			for n := 0; n < len(mine); n += 10 {
				end := min(n+10, len(mine))
				if err := shards[i].IngestBatch(fmt.Sprintf("p3-shard%d-%d", i, n), mine[n:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 30; n++ {
			if resp, err := http.Get(warm.URL + "/v1/scores?k=10"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	check("post-churn")

	// Restart shard 0 from its checkpoint. The new process picks a new
	// state epoch, so the warm view's since no longer names this state
	// history: the shard must answer with a full snapshot and the
	// gateway must adopt it — same bytes as the cold gateway throughout.
	preFull := warmGW.fullPulls.Value()
	if err := shard0.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	shard0.Close()
	reborn, err := collector.New(withQuietLogf(cfg0))
	if err != nil {
		t.Fatalf("restarting shard 0: %v", err)
	}
	defer reborn.Close()
	shards[0] = reborn
	h0.Store(reborn.Handler())
	check("post-restart")
	if full := warmGW.fullPulls.Value(); full != preFull+1 {
		t.Fatalf("restart full pulls: %d, want %d (exactly one epoch-mismatch resync)", full, preFull+1)
	}

	// The shard never lies about what it can serve, so the gateway's
	// repair path (delta that doesn't continue the warm view) must have
	// stayed cold through the whole matrix.
	if fb := warmGW.deltaFallbacks.Value(); fb != 0 {
		t.Fatalf("delta fallbacks = %d, want 0 (shards must answer full rather than a non-continuing delta)", fb)
	}

	// Ground truth: the merged view equals one unsharded collector over
	// the same runs.
	refSrv, ref := startCollector(t, base)
	defer refSrv.Close()
	for _, r := range reports {
		refSrv.Ingest(r)
	}
	var gotScores, wantScores []collector.ScoreEntry
	getJSON(t, warm.URL+"/v1/scores?k=30", &gotScores)
	getJSON(t, ref.URL+"/v1/scores?k=30", &wantScores)
	if !reflect.DeepEqual(gotScores, wantScores) {
		t.Fatalf("delta-synced /v1/scores diverges from single collector:\n got %+v\nwant %+v", gotScores, wantScores)
	}
	var gotPreds, wantPreds []collector.PredictorEntry
	getJSON(t, warm.URL+"/v1/predictors?k=0&affinity=3", &gotPreds)
	getJSON(t, ref.URL+"/v1/predictors?k=0&affinity=3", &wantPreds)
	if len(wantPreds) == 0 || !reflect.DeepEqual(gotPreds, wantPreds) {
		t.Fatalf("delta-synced /v1/predictors diverges from single collector:\n got %+v\nwant %+v", gotPreds, wantPreds)
	}
}

func withQuietLogf(cfg collector.Config) collector.Config {
	cfg.Logf = quietLogf
	return cfg
}

// TestRouterRevokeOnFailover reproduces the failover double-count and
// proves the repair: a batch is *delivered* to its owning shard but the
// connection severs before the ack, so the router re-routes it to the
// next shard — two shards now hold the same runs. When the first shard
// comes back, the router revokes the batch there and the fleet total
// converges to exactly one copy.
func TestRouterRevokeOnFailover(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := collector.Config{
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
	}
	b0, b0ts := startCollector(t, cfg)
	defer b0.Close()
	b1, b1ts := startCollector(t, cfg)
	defer b1.Close()

	// A deliver-then-sever proxy fronts backend 0: while armed, a
	// forwarded POST /v1/reports reaches the backend intact and is then
	// cut off without a single response byte — the worst-case network
	// failure, where the router cannot know whether the batch landed.
	var severed atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := http.NewRequest(r.Method, b0ts.URL+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		respBody, _ := io.ReadAll(resp.Body)
		if severed.Load() && r.Method == http.MethodPost && r.URL.Path == "/v1/reports" {
			panic(http.ErrAbortHandler) // delivered, never acked
		}
		for k, vs := range resp.Header {
			w.Header()[k] = vs
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
	}))
	t.Cleanup(proxy.Close)

	router, err := NewRouter(RouterConfig{
		Backends:       []string{proxy.URL, b1ts.URL},
		HealthInterval: 250 * time.Millisecond,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	// Pick a client identity that consistent-hashes to backend 0, so
	// the doomed batch's first stop is the severed proxy.
	clientID := ""
	for i := 0; i < 1000; i++ {
		if id := fmt.Sprintf("victim-%d", i); router.ring.owner(id) == 0 {
			clientID = id
			break
		}
	}
	if clientID == "" {
		t.Fatal("no client id hashed to backend 0")
	}
	client := collector.NewClient(rt.URL, in.Set.NumSites, in.Set.NumPreds,
		collector.WithBatchSize(64), collector.WithClientID(clientID))

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Sanity: with the proxy healthy, the client's batch lands once on
	// backend 0.
	mkSet := func(rs []*report.Report) *report.Set {
		return &report.Set{NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds, Reports: rs}
	}
	batch1 := in.Set.Reports[:40]
	batch2 := in.Set.Reports[40:70]
	if err := client.SubmitSet(context.Background(), mkSet(batch1)); err != nil {
		t.Fatal(err)
	}
	waitFor("backend 0 to apply the first batch", func() bool {
		return b0.StatsNow().ReportsApplied == int64(len(batch1))
	})

	// Arm the sever and submit the doomed batch: backend 0 applies it,
	// the router sees a network error, re-routes to backend 1, and
	// records the duplicate for revocation. Both backends now hold it.
	severed.Store(true)
	if err := client.SubmitSet(context.Background(), mkSet(batch2)); err != nil {
		t.Fatal(err)
	}
	waitFor("both backends to hold the re-routed batch", func() bool {
		return b0.StatsNow().ReportsApplied == int64(len(batch1)+len(batch2)) &&
			b1.StatsNow().ReportsApplied == int64(len(batch2))
	})

	// Heal the proxy: the next health probe brings backend 0 back and
	// delivers the pending revoke, which removes the duplicate copy.
	severed.Store(false)
	waitFor("the duplicate to be revoked on backend 0", func() bool {
		st := b0.StatsNow()
		return st.RevokedBatches == 1 && st.RevokedRuns == int64(len(batch2))
	})
	waitFor("the router to count the revoke delivery", func() bool {
		return router.StatsNow().RevokesSent == 1
	})
	if d := router.StatsNow().Dropped; d != 0 {
		t.Fatalf("router dropped %d batches; the failover must re-home, not drop", d)
	}

	// The fleet now holds exactly one copy of every run: the merged
	// gateway view equals one collector that ingested each batch once.
	gwSrv, err := NewGateway(GatewayConfig{
		Shards:      []string{proxy.URL, b1ts.URL},
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(gwSrv.Handler())
	t.Cleanup(gw.Close)
	refSrv, ref := startCollector(t, cfg)
	defer refSrv.Close()
	for _, r := range in.Set.Reports[:70] {
		refSrv.Ingest(r)
	}
	var gwStats GatewayStats
	getJSON(t, gw.URL+"/v1/stats", &gwStats)
	if gwStats.Runs != 70 {
		t.Fatalf("fleet holds %d runs after revoke, want exactly 70 (no double-count)", gwStats.Runs)
	}
	var gotScores, wantScores []collector.ScoreEntry
	getJSON(t, gw.URL+"/v1/scores?k=30", &gotScores)
	getJSON(t, ref.URL+"/v1/scores?k=30", &wantScores)
	if len(wantScores) == 0 || !reflect.DeepEqual(gotScores, wantScores) {
		t.Fatalf("post-revoke /v1/scores diverges from single-copy reference:\n got %+v\nwant %+v", gotScores, wantScores)
	}
}
