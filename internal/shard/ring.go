// Package shard implements the horizontal scaling tier for the CBI
// collector: a Router that partitions submitting clients across N
// collector backends by consistent hashing, and a Gateway that merges
// the shards' counters and run logs back into the single-collector
// query surface (/v1/scores, /v1/stats, /v1/predictors).
//
// The design leans on the statistical debugging math itself: every
// counter the collector maintains (F(P), S(P), F(P observed),
// S(P observed), run totals) is a sum over independent runs, so
// sharding by client and adding the per-shard sums is *exact* — the
// merged ranking is element-for-element what one big collector would
// have produced. There is no approximation layer to tune; the only
// caveats are retention windows (each shard evicts independently) and
// at-least-once delivery across a failover (see DESIGN.md).
//
// Both servers export Prometheus metrics at GET /metrics via
// internal/obs — routing and shed counters, per-backend queue depth
// and health, fan-out and merge latency — documented in METRICS.md;
// OPERATIONS.md maps each failure mode (dead shard, flapping backend,
// total outage) to the metric that reveals it.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per backend. 64 vnodes keeps
// the max/min load ratio across backends within a few percent for the
// small shard counts (2–16) this tier targets, while keeping the ring
// tiny (a few hundred entries).
const defaultVnodes = 64

// ring is a consistent-hash ring mapping string keys (client ids) to
// backend indices. Immutable after build: the router builds one ring at
// startup and consults it lock-free; liveness is handled above the ring
// by walking the failover order, not by rebuilding it.
type ring struct {
	hashes   []uint64 // sorted vnode hashes
	backends []int    // backends[i] owns hashes[i]
	n        int      // number of distinct backends
}

// newRing builds a ring over n backends with the given virtual-node
// count per backend (0 means defaultVnodes).
func newRing(n, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{
		hashes:   make([]uint64, 0, n*vnodes),
		backends: make([]int, 0, n*vnodes),
		n:        n,
	}
	for b := 0; b < n; b++ {
		for v := 0; v < vnodes; v++ {
			r.hashes = append(r.hashes, hashKey(fmt.Sprintf("vnode-%d-%d", b, v)))
			r.backends = append(r.backends, b)
		}
	}
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if r.hashes[idx[i]] != r.hashes[idx[j]] {
			return r.hashes[idx[i]] < r.hashes[idx[j]]
		}
		return r.backends[idx[i]] < r.backends[idx[j]]
	})
	hashes := make([]uint64, len(idx))
	backends := make([]int, len(idx))
	for i, j := range idx {
		hashes[i], backends[i] = r.hashes[j], r.backends[j]
	}
	r.hashes, r.backends = hashes, backends
	return r
}

// hashKey hashes a routing key: FNV-1a for the content, then a
// splitmix64-style finalizer. Raw FNV of short, mostly-shared-prefix
// keys (vnode labels, sequential client ids) leaves the high bits —
// the bits that decide ring position — badly mixed, which in practice
// skewed a 5-backend ring by 40x; the finalizer's avalanche restores a
// near-uniform circle.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owner returns the backend owning key: the backend of the first vnode
// clockwise from the key's hash.
func (r *ring) owner(key string) int {
	if len(r.hashes) == 0 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.backends[i]
}

// order returns all n backends in failover order for key: the owner
// first, then each subsequent *distinct* backend met walking the ring
// clockwise. Deterministic per key, so a retry after the owner fails
// always lands on the same second choice — keeping a client's reports
// on as few shards as possible even through an outage.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	if len(r.hashes) == 0 {
		return out
	}
	seen := make([]bool, r.n)
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < len(r.hashes) && len(out) < r.n; i++ {
		b := r.backends[(start+i)%len(r.hashes)]
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}
