// Package shard implements the horizontal scaling tier for the CBI
// collector: a Router that partitions submitting clients across N
// collector backends by consistent hashing, and a Gateway that merges
// the shards' counters and run logs back into the single-collector
// query surface (/v1/scores, /v1/stats, /v1/predictors).
//
// The design leans on the statistical debugging math itself: every
// counter the collector maintains (F(P), S(P), F(P observed),
// S(P observed), run totals) is a sum over independent runs, so
// sharding by client and adding the per-shard sums is *exact* — the
// merged ranking is element-for-element what one big collector would
// have produced. There is no approximation layer to tune; the only
// caveats are retention windows (each shard evicts independently) and
// at-least-once delivery across a failover (see DESIGN.md).
//
// Both servers export Prometheus metrics at GET /metrics via
// internal/obs — routing and shed counters, per-backend queue depth
// and health, fan-out and merge latency — documented in METRICS.md;
// OPERATIONS.md maps each failure mode (dead shard, flapping backend,
// total outage) to the metric that reveals it.
package shard

import (
	"fmt"
	"sort"

	"cbi/internal/corpus"
)

// defaultVnodes is the virtual-node count per backend. 64 vnodes keeps
// the max/min load ratio across backends within a few percent for the
// small shard counts (2–16) this tier targets, while keeping the ring
// tiny (a few hundred entries).
const defaultVnodes = 64

// ring is a consistent-hash ring mapping string keys (client ids) to
// backend slots. Immutable after build: the router builds a ring per
// topology and consults it lock-free; liveness is handled above the
// ring by walking the failover order, not by rebuilding it.
type ring struct {
	hashes   []uint64 // sorted vnode hashes
	backends []int    // backends[i] owns hashes[i]
	n        int      // number of distinct backend slots
	maxSlot  int      // highest slot number on the ring
}

// newRing builds a ring over slots 0..n-1 with the given virtual-node
// count per backend (0 means defaultVnodes).
func newRing(n, vnodes int) *ring {
	slots := make([]int, n)
	for i := range slots {
		slots[i] = i
	}
	return newRingOver(slots, vnodes)
}

// newRingOver builds a ring over the given backend slots. A vnode's
// position is derived from its slot number alone, so a backend keeps
// exactly its arcs across resizes that add or remove *other* slots —
// the property that makes an elastic resize move only the arcs a
// textbook consistent-hash resize must move (≈1/n of the circle), and
// lets movedRanges compute precisely which ones.
func newRingOver(slots []int, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{
		hashes:   make([]uint64, 0, len(slots)*vnodes),
		backends: make([]int, 0, len(slots)*vnodes),
		n:        len(slots),
	}
	for _, b := range slots {
		if b > r.maxSlot {
			r.maxSlot = b
		}
		for v := 0; v < vnodes; v++ {
			r.hashes = append(r.hashes, hashKey(fmt.Sprintf("vnode-%d-%d", b, v)))
			r.backends = append(r.backends, b)
		}
	}
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if r.hashes[idx[i]] != r.hashes[idx[j]] {
			return r.hashes[idx[i]] < r.hashes[idx[j]]
		}
		return r.backends[idx[i]] < r.backends[idx[j]]
	})
	hashes := make([]uint64, len(idx))
	backends := make([]int, len(idx))
	for i, j := range idx {
		hashes[i], backends[i] = r.hashes[j], r.backends[j]
	}
	r.hashes, r.backends = hashes, backends
	return r
}

// hashKey hashes a routing key. It is corpus.KeyHash — FNV-1a plus a
// splitmix64-style finalizer — shared with the collector so the hash a
// router places a batch by and the hash a collector stamps its runs
// with are the same value, and a migration's key ranges select exactly
// the runs the router would route into them.
func hashKey(key string) uint64 { return corpus.KeyHash(key) }

// owner returns the backend owning key: the backend of the first vnode
// clockwise from the key's hash.
func (r *ring) owner(key string) int { return r.ownerOfHash(hashKey(key)) }

// ownerOfHash returns the backend owning the given key hash.
func (r *ring) ownerOfHash(h uint64) int {
	if len(r.hashes) == 0 {
		return 0
	}
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.backends[i]
}

// order returns all n backends in failover order for key: the owner
// first, then each subsequent *distinct* backend met walking the ring
// clockwise. Deterministic per key, so a retry after the owner fails
// always lands on the same second choice — keeping a client's reports
// on as few shards as possible even through an outage.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	if len(r.hashes) == 0 {
		return out
	}
	seen := make([]bool, r.maxSlot+1)
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < len(r.hashes) && len(out) < r.n; i++ {
		b := r.backends[(start+i)%len(r.hashes)]
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// movedRanges computes which arcs of the hash circle change owner
// between two rings, grouped by (old owner, new owner) pair. The
// union of the two rings' vnode hashes cuts the circle into elementary
// arcs; within one arc ownership is constant on both rings (an arc's
// owner is decided by the first vnode at or past its upper endpoint,
// and no vnode of either ring lies inside an arc), so comparing owners
// at the upper endpoint classifies every key in it at once. Adjacent
// arcs moving between the same pair are coalesced. Arcs follow
// corpus.KeyRange semantics: half-open (Lo, Hi], wrapping when
// Lo >= Hi.
func movedRanges(old, next *ring) map[[2]int][]corpus.KeyRange {
	bounds := append(append([]uint64(nil), old.hashes...), next.hashes...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for i, h := range bounds {
		if i == 0 || h != bounds[i-1] {
			uniq = append(uniq, h)
		}
	}
	bounds = uniq
	out := make(map[[2]int][]corpus.KeyRange)
	for i, hi := range bounds {
		lo := bounds[(i+len(bounds)-1)%len(bounds)]
		from, to := old.ownerOfHash(hi), next.ownerOfHash(hi)
		if from == to {
			continue
		}
		pair := [2]int{from, to}
		rs := out[pair]
		if n := len(rs); n > 0 && rs[n-1].Hi == lo && i > 0 {
			rs[n-1].Hi = hi // extend the previous contiguous arc
		} else {
			rs = append(rs, corpus.KeyRange{Lo: lo, Hi: hi})
		}
		out[pair] = rs
	}
	return out
}
