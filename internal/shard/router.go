package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/obs"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Backends are the collector base URLs (e.g. "http://host:7575"),
	// one per shard. Order is the shard numbering; it must match the
	// gateway's.
	Backends []string
	// QueueSize bounds each backend's pending-forward queue in batches
	// (default 256). A full queue sheds with 429 instead of buffering
	// unboundedly — the client's retry/backoff absorbs the pressure.
	QueueSize int
	// Workers is the forwarder count per backend (default 4).
	Workers int
	// Vnodes is the virtual-node count per backend on the hash ring
	// (default 64).
	Vnodes int
	// HealthInterval is the backend /healthz polling period (default
	// 2s). Health checks both detect outages and bring failed backends
	// back into rotation.
	HealthInterval time.Duration
	// ForwardTimeout bounds one forwarded POST (default 30s).
	ForwardTimeout time.Duration
	// PlanFrom, when set, is the base URL GET /v1/plan is forwarded to —
	// in a planning deployment, the gateway (the fleet-wide planner).
	// Empty forwards to the first live backend, which serves the
	// single-shard case and gateway-push deployments (every shard holds
	// the fleet plan) alike.
	PlanFrom string
	// APIKey, when set, is presented (Bearer) on router-originated
	// write requests to backends — today the POST /v1/revoke repair
	// calls. Forwarded client batches carry the client's own
	// Authorization header instead.
	APIKey string
	// Metrics, when set, is the registry the router's metrics register
	// into; nil creates a private one. Served at GET /metrics, and the
	// source /v1/stats reads from.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SlowRequest, when positive, logs every HTTP request slower than
	// this threshold.
	SlowRequest time.Duration
	// Logf receives router diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// backend is one collector shard as the router sees it: its URL, a
// liveness flag flipped by forward errors and health probes, and a
// bounded queue drained by forward workers.
type backend struct {
	url   string
	up    atomic.Bool
	queue chan *job

	// revoked holds batch ids that were possibly applied here before the
	// backend went dark and were then re-routed (so a second shard also
	// applied them). When the backend recovers, the router POSTs
	// /v1/revoke with these ids so the fleet total converges to exactly
	// one copy of each batch (see DESIGN.md on failover double-counts).
	revMu   sync.Mutex
	revoked []string

	routed      *obs.Counter // batches enqueued to this backend
	failed      *obs.Counter // forward attempts that errored
	rerouted    *obs.Counter // batches this backend took over from a down peer
	transitions *obs.Counter // up<->down health flips
}

// maxPendingRevokes bounds one backend's pending-revoke list; beyond it
// the oldest ids are dropped (with a log line) — the residual
// double-count is bounded and visible rather than the memory unbounded.
const maxPendingRevokes = 4096

// addRevoke records one batch id to revoke when the backend recovers.
func (b *backend) addRevoke(id string, logf func(string, ...any)) {
	b.revMu.Lock()
	defer b.revMu.Unlock()
	if len(b.revoked) >= maxPendingRevokes {
		drop := len(b.revoked) - maxPendingRevokes + 1
		logf("shard: router: pending revokes for %s overflowed; dropping %d oldest (double-counts may persist)", b.url, drop)
		b.revoked = append(b.revoked[:0], b.revoked[drop:]...)
	}
	b.revoked = append(b.revoked, id)
}

// takeRevokes detaches the pending-revoke list for delivery.
func (b *backend) takeRevokes() []string {
	b.revMu.Lock()
	defer b.revMu.Unlock()
	ids := b.revoked
	b.revoked = nil
	return ids
}

// requeueRevokes puts undelivered ids back (in front) after a failed
// delivery.
func (b *backend) requeueRevokes(ids []string) {
	b.revMu.Lock()
	b.revoked = append(ids, b.revoked...)
	if len(b.revoked) > maxPendingRevokes {
		b.revoked = b.revoked[:maxPendingRevokes]
	}
	b.revMu.Unlock()
}

// job is one client batch in flight: the opaque body plus the header
// subset the collector cares about, and the failover order to walk if
// the preferred backend is down.
type job struct {
	body    []byte
	header  http.Header
	order   []int // failover order; order[0] is the consistent-hash owner
	attempt int   // index into order currently being tried
}

// Router is the write-path front of a sharded collector deployment. It
// terminates POST /v1/reports, picks the owning shard by consistent
// hashing on the client id, and forwards the batch opaquely — the
// router never decodes report payloads, so it stays cheap and
// version-agnostic. When a shard is down, batches re-route to the next
// backend in the key's failover order; the collector-side batch-id
// dedup keeps retries across that transition from double-counting on
// any single shard.
type Router struct {
	cfg      RouterConfig
	ring     *ring
	backends []*backend
	hc       *http.Client
	logf     func(string, ...any)

	// Counters are registry metrics: /v1/stats and /metrics read the
	// same objects (see METRICS.md for the exported names).
	metrics       *obs.Registry
	accepted      *obs.Counter // batches accepted (202)
	shed          *obs.Counter // batches shed with 429 (queue full)
	noShards      *obs.Counter // batches refused with 503 (all backends down)
	dropped       *obs.Counter // batches that exhausted every backend and were lost
	planForwarded *obs.Counter // GET /v1/plan requests relayed to the plan source
	planErrors    *obs.Counter // GET /v1/plan relays that failed (502/503)
	revokesSent   *obs.Counter // batch ids delivered to recovered backends' /v1/revoke
	revokeErrors  *obs.Counter // failed revoke deliveries (ids requeued)

	handler http.Handler
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	closed  sync.Once
}

// NewRouter builds a router over cfg.Backends. At least one backend is
// required.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one backend")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:    cfg,
		ring:   newRing(len(cfg.Backends), cfg.Vnodes),
		hc:     &http.Client{Timeout: cfg.ForwardTimeout},
		logf:   cfg.Logf,
		ctx:    ctx,
		cancel: cancel,
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewRegistry()
	}
	r.metrics = m
	r.accepted = m.Counter("cbi_router_accepted_total",
		"Batches accepted (202) and queued for forwarding.")
	r.shed = m.Counter("cbi_router_shed_total",
		"Batches shed with 429 because the owning backend's queue was full.")
	r.noShards = m.Counter("cbi_router_no_shard_total",
		"Batches refused with 503 because no backend was live.")
	r.dropped = m.Counter("cbi_router_dropped_total",
		"Acked batches lost after exhausting every backend (client retry redelivers).")
	r.planForwarded = m.Counter("cbi_router_plan_forwarded_total",
		"GET /v1/plan requests relayed to the plan source.")
	r.planErrors = m.Counter("cbi_router_plan_errors_total",
		"GET /v1/plan relays that failed (no live source or relay error).")
	r.revokesSent = m.Counter("cbi_router_revokes_sent_total",
		"Re-routed batch ids delivered to a recovered backend's /v1/revoke.")
	r.revokeErrors = m.Counter("cbi_router_revoke_errors_total",
		"Failed /v1/revoke deliveries to recovered backends (ids requeued).")
	routedVec := m.CounterVec("cbi_router_backend_routed_total",
		"Batches enqueued to this backend.", "backend")
	failedVec := m.CounterVec("cbi_router_backend_failed_total",
		"Forward attempts to this backend that errored or were refused.", "backend")
	reroutedVec := m.CounterVec("cbi_router_backend_rerouted_total",
		"Failover batches this backend took over from a down peer.", "backend")
	transVec := m.CounterVec("cbi_router_backend_health_transitions_total",
		"Times this backend flipped between up and down.", "backend")
	depthVec := m.GaugeVec("cbi_router_backend_queue_depth",
		"Batches waiting on this backend's forward queue.", "backend")
	upVec := m.GaugeVec("cbi_router_backend_up",
		"1 while this backend is considered live, else 0.", "backend")
	for i, u := range cfg.Backends {
		bi := strconv.Itoa(i)
		b := &backend{
			url:         u,
			queue:       make(chan *job, cfg.QueueSize),
			routed:      routedVec.With(bi),
			failed:      failedVec.With(bi),
			rerouted:    reroutedVec.With(bi),
			transitions: transVec.With(bi),
		}
		b.up.Store(true) // optimistic: the first failed forward flips it
		depthVec.WithFunc(func() float64 { return float64(len(b.queue)) }, bi)
		upVec.WithFunc(func() float64 {
			if b.up.Load() {
				return 1
			}
			return 0
		}, bi)
		r.backends = append(r.backends, b)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reports", r.handleReports)
	mux.HandleFunc("/v1/stats", r.handleStats)
	mux.HandleFunc("/v1/plan", r.handlePlan)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.Handle("/metrics", m.Handler())
	if cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	r.handler = obs.NewHTTP(obs.HTTPConfig{
		Registry:    m,
		Paths:       []string{"/v1/reports", "/v1/stats", "/v1/plan", "/healthz", "/metrics"},
		SlowRequest: cfg.SlowRequest,
		Logf:        cfg.Logf,
	}).Wrap(mux)
	for i, b := range r.backends {
		for w := 0; w < cfg.Workers; w++ {
			r.wg.Add(1)
			go r.forwardLoop(i, b)
		}
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.handler }

// routingKey picks the partition key for a request: the client's
// stable identity when it sends one, else the batch id (stable across
// retries of one batch, so a retried batch at least stays on one
// shard), else the peer address.
func routingKey(req *http.Request) string {
	if id := req.Header.Get("X-CBI-Client-ID"); id != "" {
		return id
	}
	if id := req.Header.Get("X-CBI-Batch-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(req.RemoteAddr)
	if err != nil {
		return req.RemoteAddr
	}
	return host
}

// forwardedHeaders is the header subset relayed to the backend.
// X-CBI-Plan-Version rides along so the owning collector can attribute
// batches to the sampling plan that produced them.
var forwardedHeaders = []string{
	"Content-Type", "Content-Encoding", "X-CBI-Batch-ID", "X-CBI-Client-ID",
	"X-CBI-Plan-Version", "Authorization",
}

// maxForwardBody bounds one relayed batch (matches the collector's own
// request cap).
const maxForwardBody = 64 << 20

func (r *Router) handleReports(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxForwardBody))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	order := r.ring.order(routingKey(req))
	hdr := make(http.Header, len(forwardedHeaders))
	for _, k := range forwardedHeaders {
		if v := req.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	j := &job{body: body, header: hdr, order: order}

	// Enqueue on the first *live* backend in the key's failover order.
	// A full queue on the owner sheds with 429 rather than spilling to
	// the next shard: overload is not an outage, and spilling would
	// smear a client's runs across shards every load spike.
	for _, bi := range order {
		b := r.backends[bi]
		if !b.up.Load() {
			continue
		}
		j.attempt = indexOf(order, bi)
		select {
		case b.queue <- j:
			b.routed.Add(1)
			if bi != order[0] {
				b.rerouted.Add(1)
			}
			r.accepted.Add(1)
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"routed_to":%d}`, bi)
			return
		default:
			r.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shard queue full", http.StatusTooManyRequests)
			return
		}
	}
	r.noShards.Add(1)
	w.Header().Set("Retry-After", "2")
	http.Error(w, "no live shard", http.StatusServiceUnavailable)
}

func indexOf(order []int, b int) int {
	for i, v := range order {
		if v == b {
			return i
		}
	}
	return 0
}

// handlePlan relays GET /v1/plan so fleet clients keep one endpoint for
// both report submission and rate discovery. The relay is conditional
// end to end: the client's ?since= and If-None-Match pass through, and
// the source's status (200/304), ETag, and plan version headers pass
// back, so steady-state polling through the router still costs no body
// bytes.
func (r *Router) handlePlan(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	source := r.cfg.PlanFrom
	if source == "" {
		for _, b := range r.backends {
			if b.up.Load() {
				source = b.url
				break
			}
		}
	}
	if source == "" {
		r.planErrors.Add(1)
		w.Header().Set("Retry-After", "2")
		http.Error(w, "no live plan source", http.StatusServiceUnavailable)
		return
	}
	url := source + "/v1/plan"
	if req.URL.RawQuery != "" {
		url += "?" + req.URL.RawQuery
	}
	fwd, err := http.NewRequestWithContext(req.Context(), http.MethodGet, url, nil)
	if err != nil {
		r.planErrors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, k := range []string{"If-None-Match", "X-CBI-Client-ID"} {
		if v := req.Header.Get(k); v != "" {
			fwd.Header.Set(k, v)
		}
	}
	resp, err := r.hc.Do(fwd)
	if err != nil {
		r.planErrors.Add(1)
		http.Error(w, "plan source unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for _, k := range []string{"ETag", "X-CBI-Plan-Version", "Cache-Control", "Content-Type"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, maxForwardBody))
	r.planForwarded.Add(1)
}

// forwardLoop drains one backend's queue. On a network-level failure it
// marks the backend down and re-enqueues the job to the next live
// backend in its failover order; an HTTP-level error (4xx/5xx) is the
// backend *answering*, so it is not treated as an outage — the job is
// retried here a bounded number of times for 429/5xx, then dropped with
// a log line (the submitting client's own retry loop is the real
// recovery path, and the batch id keeps that retry dedup-safe).
func (r *Router) forwardLoop(bi int, b *backend) {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case j := <-b.queue:
			r.forward(bi, b, j)
		}
	}
}

func (r *Router) forward(bi int, b *backend, j *job) {
	const httpRetries = 3
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(r.ctx, http.MethodPost,
			b.url+"/v1/reports", bytes.NewReader(j.body))
		if err != nil {
			r.logf("shard: router: building forward request: %v", err)
			return
		}
		for k, vs := range j.header {
			req.Header[k] = vs
		}
		resp, err := r.hc.Do(req)
		if err != nil {
			// Network failure: the backend is gone. Mark it down so the
			// health loop owns its return, and hand the job to the next
			// backend in the key's order. The failed request may still
			// have been *delivered* (the connection can sever after the
			// body landed), so if the job finds a new home the original
			// backend may now hold a duplicate — remember the batch id and
			// revoke it there once it recovers. Revoking a batch a backend
			// never applied is a no-op, so recording conservatively is
			// safe; not recording would leave a permanent double-count.
			b.failed.Add(1)
			if b.up.Swap(false) {
				b.transitions.Inc()
			}
			r.logf("shard: router: backend %d down (%v), re-routing", bi, err)
			if r.reroute(j) {
				if id := j.header.Get("X-CBI-Batch-ID"); id != "" {
					b.addRevoke(id, r.logf)
				}
			}
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode < 300 {
			return
		}
		b.failed.Add(1)
		retryable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
		if !retryable || attempt >= httpRetries {
			r.dropped.Add(1)
			r.logf("shard: router: backend %d refused batch (%d); dropping (client retry will redeliver)",
				bi, resp.StatusCode)
			return
		}
		t := time.NewTimer(backoff)
		backoff *= 2
		select {
		case <-r.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// reroute hands a job whose backend died to the next live backend in
// its failover order, blocking (briefly) on that queue since the job is
// already acked. It reports whether the job found a new home — the
// caller only schedules a duplicate-repair revoke when it did; a
// dropped job has no second copy to reconcile.
func (r *Router) reroute(j *job) bool {
	for next := j.attempt + 1; next < len(j.order); next++ {
		b := r.backends[j.order[next]]
		if !b.up.Load() {
			continue
		}
		j.attempt = next
		select {
		case b.queue <- j:
			b.routed.Add(1)
			b.rerouted.Add(1)
			return true
		case <-r.ctx.Done():
			return false
		case <-time.After(time.Second):
			// Queue saturated for a full second — treat as unavailable
			// and keep walking.
		}
	}
	r.dropped.Add(1)
	r.logf("shard: router: batch exhausted all backends; dropped (client retry will redeliver)")
	return false
}

// healthLoop probes each backend's /healthz. It both detects outages
// the forward path hasn't hit yet and — the part the forward path
// can't do — brings recovered backends back up.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			for i, b := range r.backends {
				up := r.probe(b)
				if up != b.up.Load() {
					b.up.Store(up)
					b.transitions.Inc()
					r.logf("shard: router: backend %d (%s) now up=%v", i, b.url, up)
				}
				if up {
					r.sendRevokes(i, b)
				}
			}
		}
	}
}

// sendRevokes delivers a recovered backend's pending duplicate-repair
// revokes. A failed delivery requeues the ids for the next health tick.
func (r *Router) sendRevokes(bi int, b *backend) {
	ids := b.takeRevokes()
	if len(ids) == 0 {
		return
	}
	body, err := json.Marshal(map[string][]string{"ids": ids})
	if err != nil {
		r.logf("shard: router: encoding revoke request: %v", err)
		b.requeueRevokes(ids)
		return
	}
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/revoke", bytes.NewReader(body))
	if err != nil {
		r.logf("shard: router: building revoke request: %v", err)
		b.requeueRevokes(ids)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if r.cfg.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+r.cfg.APIKey)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.revokeErrors.Add(1)
		r.logf("shard: router: delivering %d revokes to backend %d: %v (requeued)", len(ids), bi, err)
		b.requeueRevokes(ids)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.revokeErrors.Add(1)
		r.logf("shard: router: backend %d refused revokes (%d); requeued", bi, resp.StatusCode)
		b.requeueRevokes(ids)
		return
	}
	r.revokesSent.Add(int64(len(ids)))
	r.logf("shard: router: delivered %d duplicate-repair revokes to backend %d", len(ids), bi)
}

func (r *Router) probe(b *backend) bool {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// BackendStats is one backend's row in the router's /v1/stats.
type BackendStats struct {
	URL        string `json:"url"`
	Up         bool   `json:"up"`
	QueueDepth int    `json:"queue_depth"`
	Routed     int64  `json:"routed"`
	Rerouted   int64  `json:"rerouted"`
	Failed     int64  `json:"failed"`
}

// RouterStats is the router's GET /v1/stats response.
type RouterStats struct {
	Backends      []BackendStats `json:"backends"`
	Accepted      int64          `json:"accepted"`
	Shed          int64          `json:"shed"`
	NoShards      int64          `json:"no_shards"`
	Dropped       int64          `json:"dropped"`
	PlanForwarded int64          `json:"plan_forwarded"`
	PlanErrors    int64          `json:"plan_errors"`
	RevokesSent   int64          `json:"revokes_sent"`
	RevokeErrors  int64          `json:"revoke_errors"`
}

// StatsNow captures the router's counters — the same registry objects
// /metrics renders, so the two surfaces always agree.
func (r *Router) StatsNow() RouterStats {
	st := RouterStats{
		Accepted:      r.accepted.Value(),
		Shed:          r.shed.Value(),
		NoShards:      r.noShards.Value(),
		Dropped:       r.dropped.Value(),
		PlanForwarded: r.planForwarded.Value(),
		PlanErrors:    r.planErrors.Value(),
		RevokesSent:   r.revokesSent.Value(),
		RevokeErrors:  r.revokeErrors.Value(),
	}
	for _, b := range r.backends {
		st.Backends = append(st.Backends, BackendStats{
			URL:        b.url,
			Up:         b.up.Load(),
			QueueDepth: len(b.queue),
			Routed:     b.routed.Value(),
			Rerouted:   b.rerouted.Value(),
			Failed:     b.failed.Value(),
		})
	}
	return st
}

// Metrics returns the router's metrics registry (also served at
// GET /metrics).
func (r *Router) Metrics() *obs.Registry { return r.metrics }

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.StatsNow())
}

// handleHealthz reports 200 while at least one backend is live —
// the router can still place work somewhere.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	for _, b := range r.backends {
		if b.up.Load() {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok\n")
			return
		}
	}
	http.Error(w, "no live backend", http.StatusServiceUnavailable)
}

// Drain waits (up to timeout) for every backend queue to empty, so
// tests and shutdowns can establish that all acked batches have been
// forwarded.
func (r *Router) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		depth := 0
		for _, b := range r.backends {
			depth += len(b.queue)
		}
		if depth == 0 {
			// Queues empty; give in-flight forwards a beat to land.
			time.Sleep(20 * time.Millisecond)
			depth = 0
			for _, b := range r.backends {
				depth += len(b.queue)
			}
			if depth == 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: router drain timed out with %d queued", depth)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the workers and health loop. Queued batches not yet
// forwarded are dropped — call Drain first for a clean shutdown.
func (r *Router) Close() {
	r.closed.Do(func() {
		r.cancel()
		r.wg.Wait()
	})
}
