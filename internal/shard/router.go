package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/corpus"
	"cbi/internal/obs"
	"cbi/internal/ratelimit"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Backends are the collector base URLs (e.g. "http://host:7575"),
	// one per shard. Order is the shard numbering; it must match the
	// gateway's. Backends added later via POST /v1/ring take the next
	// slot numbers; slots are never reused.
	Backends []string
	// QueueSize bounds each backend's pending-forward queue in batches
	// (default 256). A full queue sheds with 429 instead of buffering
	// unboundedly — the client's retry/backoff absorbs the pressure.
	QueueSize int
	// Workers is the forwarder count per backend (default 4).
	Workers int
	// Vnodes is the virtual-node count per backend on the hash ring
	// (default 64).
	Vnodes int
	// MigrationBuffer bounds, in batches, the writes parked per
	// migration while its key ranges are paused for cutover (default
	// 1024). A full buffer sheds with 429 + Retry-After; nothing acked
	// is ever dropped.
	MigrationBuffer int
	// HealthInterval is the backend /healthz polling period (default
	// 2s). Health checks both detect outages and bring failed backends
	// back into rotation.
	HealthInterval time.Duration
	// ForwardTimeout bounds one forwarded POST (default 30s).
	ForwardTimeout time.Duration
	// PlanFrom, when set, is the base URL GET /v1/plan is forwarded to —
	// in a planning deployment, the gateway (the fleet-wide planner).
	// Empty forwards to the first live backend, which serves the
	// single-shard case and gateway-push deployments (every shard holds
	// the fleet plan) alike.
	PlanFrom string
	// ReadFrom, when set, is the base URL GET /v1/predictors and
	// GET /v1/compare are relayed to — in a sharded deployment, the
	// gateway, whose merged ranking covers every shard. Empty relays to
	// the first live backend, which answers the single-shard case with
	// exactly the collector's own ranking.
	ReadFrom string
	// APIKey, when set, is presented (Bearer) on router-originated
	// write requests to backends — today the POST /v1/revoke repair
	// calls — and required (Bearer) on POST /v1/ring topology changes.
	// Forwarded client batches carry the client's own Authorization
	// header instead.
	APIKey string
	// RateLimit, when positive, caps each API key's sustained write rate
	// on POST /v1/reports in requests per second (the bucket key falls
	// back to the client address when no Authorization header is
	// presented). Limited requests get 429 with a Retry-After.
	RateLimit float64
	// RateBurst is the rate limiter's burst allowance (default
	// 2*RateLimit).
	RateBurst int
	// Metrics, when set, is the registry the router's metrics register
	// into; nil creates a private one. Served at GET /metrics, and the
	// source /v1/stats reads from.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SlowRequest, when positive, logs every HTTP request slower than
	// this threshold.
	SlowRequest time.Duration
	// Logf receives router diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// backend is one collector shard as the router sees it: its URL, a
// liveness flag flipped by forward errors and health probes, and a
// bounded queue drained by forward workers.
type backend struct {
	slot int
	url  string
	up   atomic.Bool
	// active is false once a resize has removed this slot from the
	// topology: no new writes route here, but the workers keep draining
	// whatever is still queued.
	active   atomic.Bool
	queue    chan *job
	inflight atomic.Int64 // jobs dequeued whose forward hasn't finished

	// revoked holds batch ids that were possibly applied here before the
	// backend went dark and were then re-routed (so a second shard also
	// applied them). When the backend recovers, the router POSTs
	// /v1/revoke with these ids so the fleet total converges to exactly
	// one copy of each batch (see DESIGN.md on failover double-counts).
	revMu   sync.Mutex
	revoked []string

	routed      *obs.Counter // batches enqueued to this backend
	failed      *obs.Counter // forward attempts that errored
	rerouted    *obs.Counter // batches this backend took over from a down peer
	transitions *obs.Counter // up<->down health flips
}

// maxPendingRevokes bounds one backend's pending-revoke list; beyond it
// the oldest ids are dropped (with a log line) — the residual
// double-count is bounded and visible rather than the memory unbounded.
const maxPendingRevokes = 4096

// addRevoke records one batch id to revoke when the backend recovers.
func (b *backend) addRevoke(id string, logf func(string, ...any)) {
	b.revMu.Lock()
	defer b.revMu.Unlock()
	if len(b.revoked) >= maxPendingRevokes {
		drop := len(b.revoked) - maxPendingRevokes + 1
		logf("shard: router: pending revokes for %s overflowed; dropping %d oldest (double-counts may persist)", b.url, drop)
		b.revoked = append(b.revoked[:0], b.revoked[drop:]...)
	}
	b.revoked = append(b.revoked, id)
}

// takeRevokes detaches the pending-revoke list for delivery.
func (b *backend) takeRevokes() []string {
	b.revMu.Lock()
	defer b.revMu.Unlock()
	ids := b.revoked
	b.revoked = nil
	return ids
}

// requeueRevokes puts undelivered ids back (in front) after a failed
// delivery.
func (b *backend) requeueRevokes(ids []string) {
	b.revMu.Lock()
	b.revoked = append(ids, b.revoked...)
	if len(b.revoked) > maxPendingRevokes {
		b.revoked = b.revoked[:maxPendingRevokes]
	}
	b.revMu.Unlock()
}

// job is one client batch in flight: the opaque body plus the header
// subset the collector cares about, the routing key it was placed by,
// and the failover order to walk if the preferred backend is down.
type job struct {
	body    []byte
	header  http.Header
	key     string
	order   []int // failover order; order[0] is the consistent-hash owner
	attempt int   // index into order currently being tried
}

// Migration states. A migration covers the key ranges one resize moves
// from one backend to another; writes into those ranges route by state:
//
//	forwarding — still to the old owner, whose run log retains them for
//	             export (the streaming phase);
//	buffering  — parked in a bounded router-side buffer while the
//	             controller drains the source and ships the final chunk
//	             (the brief pause before cutover);
//	done       — to the new owner; the cutover flushed the buffer there.
const (
	migForwarding = int32(iota)
	migBuffering
	migDone
)

func migStateName(s int32) string {
	switch s {
	case migForwarding:
		return "forwarding"
	case migBuffering:
		return "buffering"
	case migDone:
		return "done"
	}
	return "unknown"
}

// migration is the router's routing state for one (from, to) backend
// pair of an in-flight resize.
type migration struct {
	id     string
	from   int
	to     int
	ranges []corpus.KeyRange
	state  atomic.Int32

	mu  sync.Mutex
	buf []*job
}

// resizeOp is one in-flight topology change: the slot being added or
// removed and the per-pair migrations that carry its key ranges.
type resizeOp struct {
	action string // "add" or "remove"
	slot   int
	migs   []*migration
}

// Router is the write-path front of a sharded collector deployment. It
// terminates POST /v1/reports, picks the owning shard by consistent
// hashing on the client id, and forwards the batch opaquely — the
// router never decodes report payloads, so it stays cheap and
// version-agnostic. When a shard is down, batches re-route to the next
// backend in the key's failover order; the collector-side batch-id
// dedup keeps retries across that transition from double-counting on
// any single shard.
//
// The topology is elastic: POST /v1/ring stages a resize, the
// migration controller (internal/migrate) streams the moving state
// shard-to-shard, and per-range migration states route writes so that
// nothing is lost or double-counted while ownership moves.
type Router struct {
	cfg     RouterConfig
	hc      *http.Client
	logf    func(string, ...any)
	limiter *ratelimit.PerKey

	// topoMu guards the serving topology: the ring, the backend list
	// (append-only; slots are stable), and the in-flight resize. The
	// hot path takes it shared for one ring lookup per request.
	topoMu      sync.RWMutex
	ring        *ring
	next        *ring // target ring while resize != nil
	resize      *resizeOp
	backends    []*backend
	ringVersion uint64

	// Counters are registry metrics: /v1/stats and /metrics read the
	// same objects (see METRICS.md for the exported names).
	metrics       *obs.Registry
	accepted      *obs.Counter // batches accepted (202)
	shed          *obs.Counter // batches shed with 429 (queue full)
	noShards      *obs.Counter // batches refused with 503 (all backends down)
	dropped       *obs.Counter // batches that exhausted every backend and were lost
	planForwarded *obs.Counter // GET /v1/plan requests relayed to the plan source
	planErrors    *obs.Counter // GET /v1/plan relays that failed (502/503)
	readForwarded *obs.Counter // predictor/compare reads relayed to the read source
	readErrors    *obs.Counter // predictor/compare relays that failed (502/503)
	revokesSent   *obs.Counter // batch ids delivered to recovered backends' /v1/revoke
	revokeErrors  *obs.Counter // failed revoke deliveries (ids requeued)
	rateLimited   *obs.Counter // writes refused by the per-key rate limit
	bufferedTotal *obs.Counter // writes parked in a migration buffer
	bufferRejects *obs.Counter // writes shed because a migration buffer was full
	cutovers      *obs.Counter // migrations cut over to their new owner

	routedVec   *obs.CounterVec
	failedVec   *obs.CounterVec
	reroutedVec *obs.CounterVec
	transVec    *obs.CounterVec
	depthVec    *obs.GaugeVec
	upVec       *obs.GaugeVec
	inflightVec *obs.GaugeVec

	handler http.Handler
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	closed  sync.Once
}

// NewRouter builds a router over cfg.Backends. At least one backend is
// required.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one backend")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MigrationBuffer <= 0 {
		cfg.MigrationBuffer = 1024
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:         cfg,
		ring:        newRing(len(cfg.Backends), cfg.Vnodes),
		hc:          &http.Client{Timeout: cfg.ForwardTimeout},
		logf:        cfg.Logf,
		limiter:     ratelimit.New(cfg.RateLimit, cfg.RateBurst),
		ringVersion: 1,
		ctx:         ctx,
		cancel:      cancel,
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewRegistry()
	}
	r.metrics = m
	r.accepted = m.Counter("cbi_router_accepted_total",
		"Batches accepted (202) and queued for forwarding.")
	r.shed = m.Counter("cbi_router_shed_total",
		"Batches shed with 429 because the owning backend's queue was full.")
	r.noShards = m.Counter("cbi_router_no_shard_total",
		"Batches refused with 503 because no backend was live.")
	r.dropped = m.Counter("cbi_router_dropped_total",
		"Acked batches lost after exhausting every backend (client retry redelivers).")
	r.planForwarded = m.Counter("cbi_router_plan_forwarded_total",
		"GET /v1/plan requests relayed to the plan source.")
	r.planErrors = m.Counter("cbi_router_plan_errors_total",
		"GET /v1/plan relays that failed (no live source or relay error).")
	r.readForwarded = m.Counter("cbi_router_reads_forwarded_total",
		"GET /v1/predictors and /v1/compare requests relayed to the read source.")
	r.readErrors = m.Counter("cbi_router_read_errors_total",
		"Predictor/compare relays that failed (no live source or relay error).")
	r.revokesSent = m.Counter("cbi_router_revokes_sent_total",
		"Re-routed batch ids delivered to a recovered backend's /v1/revoke.")
	r.revokeErrors = m.Counter("cbi_router_revoke_errors_total",
		"Failed /v1/revoke deliveries to recovered backends (ids requeued).")
	r.rateLimited = m.Counter("cbi_auth_rate_limited_total",
		"Write requests refused with 429 by the per-key rate limit.")
	r.bufferedTotal = m.Counter("cbi_router_migration_buffered_total",
		"Writes parked in a migration buffer while their key range was paused for cutover.")
	r.bufferRejects = m.Counter("cbi_router_migration_buffer_rejects_total",
		"Writes shed with 429 because a paused migration's buffer was full.")
	r.cutovers = m.Counter("cbi_router_migration_cutovers_total",
		"Migrations cut over: buffered writes flushed to the new owner.")
	m.GaugeFunc("cbi_router_ring_version",
		"Version of the topology the router currently serves (bumped per committed resize).", func() float64 {
			r.topoMu.RLock()
			defer r.topoMu.RUnlock()
			return float64(r.ringVersion)
		})
	m.GaugeFunc("cbi_router_migrations_active",
		"Per-pair migrations of the in-flight resize not yet cut over.", func() float64 {
			r.topoMu.RLock()
			defer r.topoMu.RUnlock()
			if r.resize == nil {
				return 0
			}
			n := 0
			for _, mg := range r.resize.migs {
				if mg.state.Load() != migDone {
					n++
				}
			}
			return float64(n)
		})
	m.GaugeFunc("cbi_router_migration_buffered",
		"Writes currently parked in migration buffers awaiting cutover.", func() float64 {
			r.topoMu.RLock()
			defer r.topoMu.RUnlock()
			if r.resize == nil {
				return 0
			}
			n := 0
			for _, mg := range r.resize.migs {
				mg.mu.Lock()
				n += len(mg.buf)
				mg.mu.Unlock()
			}
			return float64(n)
		})
	r.routedVec = m.CounterVec("cbi_router_backend_routed_total",
		"Batches enqueued to this backend.", "backend")
	r.failedVec = m.CounterVec("cbi_router_backend_failed_total",
		"Forward attempts to this backend that errored or were refused.", "backend")
	r.reroutedVec = m.CounterVec("cbi_router_backend_rerouted_total",
		"Failover batches this backend took over from a down peer.", "backend")
	r.transVec = m.CounterVec("cbi_router_backend_health_transitions_total",
		"Times this backend flipped between up and down.", "backend")
	r.depthVec = m.GaugeVec("cbi_router_backend_queue_depth",
		"Batches waiting on this backend's forward queue.", "backend")
	r.upVec = m.GaugeVec("cbi_router_backend_up",
		"1 while this backend is considered live, else 0.", "backend")
	r.inflightVec = m.GaugeVec("cbi_router_backend_inflight",
		"Batches dequeued for this backend whose forward has not finished.", "backend")
	for _, u := range cfg.Backends {
		r.addBackendLocked(u)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reports", r.handleReports)
	mux.HandleFunc("/v1/stats", r.handleStats)
	mux.HandleFunc("/v1/plan", r.handlePlan)
	mux.HandleFunc("/v1/predictors", r.handleRead)
	mux.HandleFunc("/v1/compare", r.handleRead)
	mux.HandleFunc("/v1/ring", r.handleRing)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.Handle("/metrics", m.Handler())
	if cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	r.handler = obs.NewHTTP(obs.HTTPConfig{
		Registry:    m,
		Paths:       []string{"/v1/reports", "/v1/stats", "/v1/plan", "/v1/predictors", "/v1/compare", "/v1/ring", "/healthz", "/metrics"},
		SlowRequest: cfg.SlowRequest,
		Logf:        cfg.Logf,
	}).Wrap(mux)
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// addBackendLocked appends a backend at the next slot and starts its
// forward workers. Callers hold topoMu (or are still inside NewRouter,
// before the handler is reachable).
func (r *Router) addBackendLocked(url string) *backend {
	slot := len(r.backends)
	bi := strconv.Itoa(slot)
	b := &backend{
		slot:        slot,
		url:         url,
		queue:       make(chan *job, r.cfg.QueueSize),
		routed:      r.routedVec.With(bi),
		failed:      r.failedVec.With(bi),
		rerouted:    r.reroutedVec.With(bi),
		transitions: r.transVec.With(bi),
	}
	b.up.Store(true) // optimistic: the first failed forward flips it
	b.active.Store(true)
	r.depthVec.WithFunc(func() float64 { return float64(len(b.queue)) }, bi)
	r.upVec.WithFunc(func() float64 {
		if b.up.Load() {
			return 1
		}
		return 0
	}, bi)
	r.inflightVec.WithFunc(func() float64 { return float64(b.inflight.Load()) }, bi)
	r.backends = append(r.backends, b)
	for w := 0; w < r.cfg.Workers; w++ {
		r.wg.Add(1)
		go r.forwardLoop(slot, b)
	}
	return b
}

// backendSnapshot returns the current backend list. The slice is
// append-only under topoMu, so a length-capped shallow copy is a
// consistent view.
func (r *Router) backendSnapshot() []*backend {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	return r.backends[:len(r.backends):len(r.backends)]
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.handler }

// routingKey picks the partition key for a request: the client's
// stable identity when it sends one, else the batch id (stable across
// retries of one batch, so a retried batch at least stays on one
// shard), else the peer address.
func routingKey(req *http.Request) string {
	if id := req.Header.Get("X-CBI-Client-ID"); id != "" {
		return id
	}
	if id := req.Header.Get("X-CBI-Batch-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(req.RemoteAddr)
	if err != nil {
		return req.RemoteAddr
	}
	return host
}

// forwardedHeaders is the header subset relayed to the backend.
// X-CBI-Plan-Version rides along so the owning collector can attribute
// batches to the sampling plan that produced them.
var forwardedHeaders = []string{
	"Content-Type", "Content-Encoding", "X-CBI-Batch-ID", "X-CBI-Client-ID",
	"X-CBI-Plan-Version", "Authorization",
}

// maxForwardBody bounds one relayed batch (matches the collector's own
// request cap).
const maxForwardBody = 64 << 20

// rateLimit enforces the per-key write rate limit, keyed by the
// presented Authorization header (each API key gets its own budget)
// with the client address as fallback. It writes the 429 + Retry-After
// itself on a limited request. No-op when RateLimit is unset.
func (r *Router) rateLimit(w http.ResponseWriter, req *http.Request) bool {
	if r.limiter == nil {
		return true
	}
	key := req.Header.Get("Authorization")
	if key == "" {
		key = req.RemoteAddr
		if host, _, err := net.SplitHostPort(req.RemoteAddr); err == nil {
			key = host
		}
	}
	ok, retry := r.limiter.Allow(key, time.Now())
	if !ok {
		r.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(ratelimit.RetrySeconds(retry)))
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
	}
	return ok
}

func (r *Router) handleReports(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !r.rateLimit(w, req) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxForwardBody))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := routingKey(req)
	h := hashKey(key)
	hdr := make(http.Header, len(forwardedHeaders)+1)
	for _, k := range forwardedHeaders {
		if v := req.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	// Stamp the routing-key hash so the owning collector tags the
	// batch's runs with exactly the circle position the router placed
	// them by — the tag a later migration selects runs by.
	hdr.Set("X-CBI-Routing-Key", strconv.FormatUint(h, 10))
	j := &job{body: body, header: hdr, key: key}

	r.topoMu.RLock()
	mg := r.lookupMigrationLocked(h)
	var order []int
	switch {
	case mg != nil && mg.state.Load() == migBuffering:
		r.topoMu.RUnlock()
		// The range is paused for cutover: park the write (bounded) so
		// the controller can drain the source and ship the final chunk
		// without a moving target. Acked now, delivered to the new
		// owner at cutover — exactly one ack, exactly one delivery.
		mg.mu.Lock()
		if mg.state.Load() != migBuffering {
			// Cutover raced us between the state read and the lock; the
			// flush already drained the buffer, so route normally below.
			mg.mu.Unlock()
		} else {
			if len(mg.buf) >= r.cfg.MigrationBuffer {
				mg.mu.Unlock()
				r.bufferRejects.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "migration buffer full", http.StatusTooManyRequests)
				return
			}
			mg.buf = append(mg.buf, j)
			mg.mu.Unlock()
			r.bufferedTotal.Add(1)
			r.accepted.Add(1)
			w.WriteHeader(http.StatusAccepted)
			io.WriteString(w, `{"buffered":true}`)
			return
		}
		r.topoMu.RLock()
		order = r.routeOrderLocked(key, h)
		r.topoMu.RUnlock()
	case mg != nil && mg.state.Load() == migDone:
		// Cut over: the new owner serves this range even though the
		// serving ring still names the old one until commit.
		order = orderVia(r.next, key, mg.to)
		r.topoMu.RUnlock()
	default:
		// No resize in flight for this key, or its migration is still
		// forwarding — the serving ring's owner is the range's source,
		// whose run log retains what the export will stream.
		order = r.ring.order(key)
		r.topoMu.RUnlock()
	}

	// Enqueue on the first *live* backend in the key's failover order.
	// A full queue on the owner sheds with 429 rather than spilling to
	// the next shard: overload is not an outage, and spilling would
	// smear a client's runs across shards every load spike.
	backends := r.backendSnapshot()
	for _, bi := range order {
		b := backends[bi]
		if !b.up.Load() || !b.active.Load() {
			continue
		}
		j.attempt = indexOf(order, bi)
		j.order = order
		select {
		case b.queue <- j:
			b.routed.Add(1)
			if bi != order[0] {
				b.rerouted.Add(1)
			}
			r.accepted.Add(1)
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"routed_to":%d}`, bi)
			return
		default:
			r.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shard queue full", http.StatusTooManyRequests)
			return
		}
	}
	r.noShards.Add(1)
	w.Header().Set("Retry-After", "2")
	http.Error(w, "no live shard", http.StatusServiceUnavailable)
}

// routeOrderLocked computes the failover order for a key under topoMu,
// honoring a done migration covering its hash (post-cutover keys go to
// the new owner before commit).
func (r *Router) routeOrderLocked(key string, h uint64) []int {
	if mg := r.lookupMigrationLocked(h); mg != nil && mg.state.Load() == migDone {
		return orderVia(r.next, key, mg.to)
	}
	return r.ring.order(key)
}

// lookupMigrationLocked returns the in-flight migration covering the
// key hash, or nil. Callers hold topoMu. Migrations of one resize
// cover disjoint arcs, so at most one matches.
func (r *Router) lookupMigrationLocked(h uint64) *migration {
	if r.resize == nil {
		return nil
	}
	for _, mg := range r.resize.migs {
		if corpus.InRanges(h, mg.ranges) {
			return mg
		}
	}
	return nil
}

// orderVia builds a failover order for key from the given ring,
// guaranteeing `first` leads it. The migration's destination owns the
// key on the target ring by construction; pinning it first keeps that
// true even at the boundary hash of a coalesced arc.
func orderVia(rg *ring, key string, first int) []int {
	order := rg.order(key)
	out := make([]int, 0, len(order)+1)
	out = append(out, first)
	for _, bi := range order {
		if bi != first {
			out = append(out, bi)
		}
	}
	return out
}

func indexOf(order []int, b int) int {
	for i, v := range order {
		if v == b {
			return i
		}
	}
	return 0
}

// handlePlan relays GET /v1/plan so fleet clients keep one endpoint for
// both report submission and rate discovery. The relay is conditional
// end to end: the client's ?since= and If-None-Match pass through, and
// the source's status (200/304), ETag, and plan version headers pass
// back, so steady-state polling through the router still costs no body
// bytes.
func (r *Router) handlePlan(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	source := r.cfg.PlanFrom
	if source == "" {
		for _, b := range r.backendSnapshot() {
			if b.up.Load() && b.active.Load() {
				source = b.url
				break
			}
		}
	}
	if source == "" {
		r.planErrors.Add(1)
		w.Header().Set("Retry-After", "2")
		http.Error(w, "no live plan source", http.StatusServiceUnavailable)
		return
	}
	url := source + "/v1/plan"
	if req.URL.RawQuery != "" {
		url += "?" + req.URL.RawQuery
	}
	fwd, err := http.NewRequestWithContext(req.Context(), http.MethodGet, url, nil)
	if err != nil {
		r.planErrors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, k := range []string{"If-None-Match", "X-CBI-Client-ID"} {
		if v := req.Header.Get(k); v != "" {
			fwd.Header.Set(k, v)
		}
	}
	resp, err := r.hc.Do(fwd)
	if err != nil {
		r.planErrors.Add(1)
		http.Error(w, "plan source unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for _, k := range []string{"ETag", "X-CBI-Plan-Version", "Cache-Control", "Content-Type"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, maxForwardBody))
	r.planForwarded.Add(1)
}

// handleRead relays GET /v1/predictors and GET /v1/compare so fleet
// operators keep one endpoint for writes and analysis queries alike.
// The query string — including ?engine= / ?engines= — passes through
// verbatim, and the source's status passes back, so a 400 naming the
// registered engines reaches the caller unchanged. The source is
// cfg.ReadFrom (the gateway, for merged fleet-wide rankings) or else
// the first live backend.
func (r *Router) handleRead(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	source := r.cfg.ReadFrom
	if source == "" {
		for _, b := range r.backendSnapshot() {
			if b.up.Load() && b.active.Load() {
				source = b.url
				break
			}
		}
	}
	if source == "" {
		r.readErrors.Add(1)
		w.Header().Set("Retry-After", "2")
		http.Error(w, "no live read source", http.StatusServiceUnavailable)
		return
	}
	url := source + req.URL.Path
	if req.URL.RawQuery != "" {
		url += "?" + req.URL.RawQuery
	}
	fwd, err := http.NewRequestWithContext(req.Context(), http.MethodGet, url, nil)
	if err != nil {
		r.readErrors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := r.hc.Do(fwd)
	if err != nil {
		r.readErrors.Add(1)
		http.Error(w, "read source unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if v := resp.Header.Get("Content-Type"); v != "" {
		w.Header().Set("Content-Type", v)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, maxForwardBody))
	r.readForwarded.Add(1)
}

// forwardLoop drains one backend's queue. On a network-level failure it
// marks the backend down and re-enqueues the job to the next live
// backend in its failover order; an HTTP-level error (4xx/5xx) is the
// backend *answering*, so it is not treated as an outage — the job is
// retried here a bounded number of times for 429/5xx, then dropped with
// a log line (the submitting client's own retry loop is the real
// recovery path, and the batch id keeps that retry dedup-safe).
func (r *Router) forwardLoop(bi int, b *backend) {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case j := <-b.queue:
			b.inflight.Add(1)
			r.forward(bi, b, j)
			b.inflight.Add(-1)
		}
	}
}

func (r *Router) forward(bi int, b *backend, j *job) {
	const httpRetries = 3
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(r.ctx, http.MethodPost,
			b.url+"/v1/reports", bytes.NewReader(j.body))
		if err != nil {
			r.logf("shard: router: building forward request: %v", err)
			return
		}
		for k, vs := range j.header {
			req.Header[k] = vs
		}
		resp, err := r.hc.Do(req)
		if err != nil {
			// Network failure: the backend is gone. Mark it down so the
			// health loop owns its return, and hand the job to the next
			// backend in the key's order. The failed request may still
			// have been *delivered* (the connection can sever after the
			// body landed), so if the job finds a new home the original
			// backend may now hold a duplicate — remember the batch id and
			// revoke it there once it recovers. Revoking a batch a backend
			// never applied is a no-op, so recording conservatively is
			// safe; not recording would leave a permanent double-count.
			b.failed.Add(1)
			if b.up.Swap(false) {
				b.transitions.Inc()
			}
			r.logf("shard: router: backend %d down (%v), re-routing", bi, err)
			if r.reroute(j) {
				if id := j.header.Get("X-CBI-Batch-ID"); id != "" {
					b.addRevoke(id, r.logf)
				}
			}
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode < 300 {
			return
		}
		b.failed.Add(1)
		retryable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
		if !retryable || attempt >= httpRetries {
			r.dropped.Add(1)
			r.logf("shard: router: backend %d refused batch (%d); dropping (client retry will redeliver)",
				bi, resp.StatusCode)
			return
		}
		t := time.NewTimer(backoff)
		backoff *= 2
		select {
		case <-r.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// reroute hands a job whose backend died to the next live backend in
// its failover order, blocking (briefly) on that queue since the job is
// already acked. It reports whether the job found a new home — the
// caller only schedules a duplicate-repair revoke when it did; a
// dropped job has no second copy to reconcile.
func (r *Router) reroute(j *job) bool {
	backends := r.backendSnapshot()
	for next := j.attempt + 1; next < len(j.order); next++ {
		b := backends[j.order[next]]
		if !b.up.Load() || !b.active.Load() {
			continue
		}
		j.attempt = next
		select {
		case b.queue <- j:
			b.routed.Add(1)
			b.rerouted.Add(1)
			return true
		case <-r.ctx.Done():
			return false
		case <-time.After(time.Second):
			// Queue saturated for a full second — treat as unavailable
			// and keep walking.
		}
	}
	r.dropped.Add(1)
	r.logf("shard: router: batch exhausted all backends; dropped (client retry will redeliver)")
	return false
}

// healthLoop probes each backend's /healthz. It both detects outages
// the forward path hasn't hit yet and — the part the forward path
// can't do — brings recovered backends back up.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			for i, b := range r.backendSnapshot() {
				if !b.active.Load() {
					continue
				}
				up := r.probe(b)
				if up != b.up.Load() {
					b.up.Store(up)
					b.transitions.Inc()
					r.logf("shard: router: backend %d (%s) now up=%v", i, b.url, up)
				}
				if up {
					r.sendRevokes(i, b)
				}
			}
		}
	}
}

// sendRevokes delivers a recovered backend's pending duplicate-repair
// revokes. A failed delivery requeues the ids for the next health tick.
func (r *Router) sendRevokes(bi int, b *backend) {
	ids := b.takeRevokes()
	if len(ids) == 0 {
		return
	}
	body, err := json.Marshal(map[string][]string{"ids": ids})
	if err != nil {
		r.logf("shard: router: encoding revoke request: %v", err)
		b.requeueRevokes(ids)
		return
	}
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/revoke", bytes.NewReader(body))
	if err != nil {
		r.logf("shard: router: building revoke request: %v", err)
		b.requeueRevokes(ids)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if r.cfg.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+r.cfg.APIKey)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.revokeErrors.Add(1)
		r.logf("shard: router: delivering %d revokes to backend %d: %v (requeued)", len(ids), bi, err)
		b.requeueRevokes(ids)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.revokeErrors.Add(1)
		r.logf("shard: router: backend %d refused revokes (%d); requeued", bi, resp.StatusCode)
		b.requeueRevokes(ids)
		return
	}
	r.revokesSent.Add(int64(len(ids)))
	r.logf("shard: router: delivered %d duplicate-repair revokes to backend %d", len(ids), bi)
}

func (r *Router) probe(b *backend) bool {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// BackendStats is one backend's row in the router's /v1/stats.
type BackendStats struct {
	Slot       int    `json:"slot"`
	URL        string `json:"url"`
	Up         bool   `json:"up"`
	Active     bool   `json:"active"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int64  `json:"inflight"`
	Routed     int64  `json:"routed"`
	Rerouted   int64  `json:"rerouted"`
	Failed     int64  `json:"failed"`
}

// RouterStats is the router's GET /v1/stats response.
type RouterStats struct {
	Backends      []BackendStats `json:"backends"`
	RingVersion   uint64         `json:"ring_version"`
	Accepted      int64          `json:"accepted"`
	Shed          int64          `json:"shed"`
	NoShards      int64          `json:"no_shards"`
	Dropped       int64          `json:"dropped"`
	PlanForwarded int64          `json:"plan_forwarded"`
	PlanErrors    int64          `json:"plan_errors"`
	RevokesSent   int64          `json:"revokes_sent"`
	RevokeErrors  int64          `json:"revoke_errors"`
	RateLimited   int64          `json:"rate_limited"`
	Buffered      int64          `json:"migration_buffered"`
	BufferRejects int64          `json:"migration_buffer_rejects"`
	Cutovers      int64          `json:"migration_cutovers"`
}

// StatsNow captures the router's counters — the same registry objects
// /metrics renders, so the two surfaces always agree.
func (r *Router) StatsNow() RouterStats {
	r.topoMu.RLock()
	version := r.ringVersion
	r.topoMu.RUnlock()
	st := RouterStats{
		RingVersion:   version,
		Accepted:      r.accepted.Value(),
		Shed:          r.shed.Value(),
		NoShards:      r.noShards.Value(),
		Dropped:       r.dropped.Value(),
		PlanForwarded: r.planForwarded.Value(),
		PlanErrors:    r.planErrors.Value(),
		RevokesSent:   r.revokesSent.Value(),
		RevokeErrors:  r.revokeErrors.Value(),
		RateLimited:   r.rateLimited.Value(),
		Buffered:      r.bufferedTotal.Value(),
		BufferRejects: r.bufferRejects.Value(),
		Cutovers:      r.cutovers.Value(),
	}
	for _, b := range r.backendSnapshot() {
		st.Backends = append(st.Backends, BackendStats{
			Slot:       b.slot,
			URL:        b.url,
			Up:         b.up.Load(),
			Active:     b.active.Load(),
			QueueDepth: len(b.queue),
			Inflight:   b.inflight.Load(),
			Routed:     b.routed.Value(),
			Rerouted:   b.rerouted.Value(),
			Failed:     b.failed.Value(),
		})
	}
	return st
}

// Metrics returns the router's metrics registry (also served at
// GET /metrics).
func (r *Router) Metrics() *obs.Registry { return r.metrics }

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.StatsNow())
}

// handleHealthz reports 200 while at least one backend is live —
// the router can still place work somewhere.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	for _, b := range r.backendSnapshot() {
		if b.up.Load() && b.active.Load() {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok\n")
			return
		}
	}
	http.Error(w, "no live backend", http.StatusServiceUnavailable)
}

// Drain waits (up to timeout) for every backend queue to empty and
// every in-flight forward to land, so tests and shutdowns can establish
// that all acked batches have been forwarded.
func (r *Router) Drain(timeout time.Duration) error {
	depth := func() int {
		d := 0
		for _, b := range r.backendSnapshot() {
			d += len(b.queue) + int(b.inflight.Load())
		}
		return d
	}
	deadline := time.Now().Add(timeout)
	for {
		if depth() == 0 {
			// Queues empty; give in-flight forwards a beat to land.
			time.Sleep(20 * time.Millisecond)
			if depth() == 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: router drain timed out with %d queued", depth())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the workers and health loop. Queued batches not yet
// forwarded are dropped — call Drain first for a clean shutdown.
func (r *Router) Close() {
	r.closed.Do(func() {
		r.cancel()
		r.wg.Wait()
	})
}
