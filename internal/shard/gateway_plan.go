package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cbi/internal/core"
	"cbi/internal/plan"
)

// The gateway's half of the closed sampling loop. In planner mode
// (PlanEvery > 0) the gateway is the fleet's single planning authority:
// each tick it adopts the highest plan version any shard knows (so a
// restarted gateway resumes the fleet's version chain instead of
// restarting it at 1), merges every shard's per-site reach counts into
// the fleet-wide window, re-plans, and pushes the published plan back
// to all shards — from where clients and routers pick it up. In proxy
// mode (PlanEvery == 0) the gateway never plans; GET /v1/plan refreshes
// from the shards and serves the newest version the fleet knows, so a
// gateway can front planner-enabled collectors without forking the
// version chain.

// planInput merges every live shard's snapshot into one fleet-wide
// planning window: per-site observed-run counts, total runs, and the
// merged top predictor's site for targeted deployment.
func (g *Gateway) planInput() plan.Input {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
	defer cancel()
	merged, _, _, err := g.merge(g.fetchAll(ctx))
	if err != nil {
		g.logf("shard: gateway: planning window unavailable: %v", err)
		return plan.Input{TopSite: -1}
	}
	observed := make([]int64, g.cfg.NumSites)
	for i := range observed {
		observed[i] = merged.FobsSite[i] + merged.SobsSite[i]
	}
	topSite := -1
	if g.cfg.PlanBoostRadius > 0 {
		if ranked := core.TopKImportance(merged.ToAgg(g.cfg.SiteOf), 1); len(ranked) > 0 {
			topSite = int(g.cfg.SiteOf[ranked[0].Pred])
		}
	}
	return plan.Input{
		Observed: observed,
		Runs:     merged.NumF + merged.NumS,
		TopSite:  topSite,
	}
}

// refreshFromShards asks every shard for a plan newer than the
// gateway's own (`?since=<version>`) and adopts the highest version any
// shard returns. Callers hold g.planMu.
func (g *Gateway) refreshFromShards(ctx context.Context) {
	since := g.planStore.Version()
	var best *plan.Plan
	for i, url := range g.shards.list() {
		p, err := g.fetchShardPlan(ctx, url, since)
		if err != nil {
			g.logf("shard: gateway: plan refresh from shard %d: %v", i, err)
			continue
		}
		if p != nil && (best == nil || p.Version > best.Version) {
			best = p
		}
	}
	if best != nil && g.planStore.Publish(best) {
		g.logf("shard: gateway: adopted fleet sampling plan v%d from shards", best.Version)
	}
}

// fetchShardPlan performs one conditional plan fetch; (nil, nil) means
// the shard has nothing newer than since.
func (g *Gateway) fetchShardPlan(ctx context.Context, url string, since uint64) (*plan.Plan, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		url+"/v1/plan?since="+strconv.FormatUint(since, 10), nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotModified, http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("GET /v1/plan: %d: %s", resp.StatusCode, body)
	}
	p, err := plan.Decode(resp.Body, g.cfg.NumSites)
	if err != nil {
		return nil, err
	}
	if g.cfg.Fingerprint != 0 && p.Fingerprint != 0 && p.Fingerprint != g.cfg.Fingerprint {
		return nil, fmt.Errorf("plan fingerprint %016x does not match gateway %016x",
			p.Fingerprint, g.cfg.Fingerprint)
	}
	return p, nil
}

// Replan runs one planning cycle: adopt the fleet's highest version,
// re-plan from the merged window, and push any newly published plan to
// every shard. It returns the store's plan after the attempt and
// whether a new version was published.
func (g *Gateway) Replan(ctx context.Context) (*plan.Plan, bool) {
	g.planMu.Lock()
	defer g.planMu.Unlock()
	g.refreshFromShards(ctx)
	p, published := g.planner.Replan()
	if published {
		g.replans.Inc()
		g.logf("shard: gateway: published fleet sampling plan v%d (%d runs, %d boosted sites)",
			p.Version, p.Runs, len(p.Boosts))
		g.pushPlan(ctx, p)
	}
	return p, published
}

// pushPlan POSTs a plan to every shard; a shard that already has the
// version (or a newer one) still counts as a successful push — the
// point is convergence, not acceptance.
func (g *Gateway) pushPlan(ctx context.Context, p *plan.Plan) {
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		g.logf("shard: gateway: encoding plan v%d: %v", p.Version, err)
		return
	}
	for i, url := range g.shards.list() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			url+"/v1/plan", bytes.NewReader(buf.Bytes()))
		if err != nil {
			g.planPushErrors.Inc()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		if g.cfg.PlanPushKey != "" {
			req.Header.Set("Authorization", "Bearer "+g.cfg.PlanPushKey)
		}
		resp, err := g.hc.Do(req)
		if err != nil {
			g.planPushErrors.Inc()
			g.logf("shard: gateway: pushing plan v%d to shard %d: %v", p.Version, i, err)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			g.planPushErrors.Inc()
			g.logf("shard: gateway: pushing plan v%d to shard %d: %d: %s",
				p.Version, i, resp.StatusCode, body)
			continue
		}
		g.planPushes.Inc()
	}
}

// planLoop drives planner mode until Close.
func (g *Gateway) planLoop() {
	t := time.NewTicker(g.cfg.PlanEvery)
	defer t.Stop()
	for {
		select {
		case <-g.die:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
			g.Replan(ctx)
			cancel()
		}
	}
}

// handlePlan serves GET /v1/plan. In proxy mode the gateway first
// refreshes from the shards so it serves the fleet's current plan, not
// its own bootstrap.
func (g *Gateway) handlePlan(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if g.cfg.PlanEvery <= 0 {
		g.planMu.Lock()
		g.refreshFromShards(req.Context())
		g.planMu.Unlock()
	}
	if plan.ServeGet(w, req, g.planStore) {
		g.planNotModified.Inc()
	} else {
		g.planFetches.Inc()
	}
}
