package subjects

import "cbi/internal/interp"

// Moss returns the MOSS analog: a winnowing document-fingerprinting
// tool (Schleimer, Wilkerson, Aiken, SIGMOD'03 — the algorithm behind
// the real MOSS) seeded with nine bugs mirroring the paper's §4.1
// validation experiment:
//
//	#1 buffer overrun of the passages array (common, corrupts
//	   neighbouring file metadata, crashes late)
//	#2 null token-buffer dereference for empty files of language 19
//	   (the rarest bug)
//	#3 missing end-of-list check walking a hash bucket chain
//	#4 buffer overrun of the global token buffer past 500 tokens
//	#5 missing range check on the language id: reads past the language
//	   tables (the most common bug, crashes at the site)
//	#6 missing end-of-stream check: a -1 size reaches the allocator
//	#7 buffer overrun (of the intended window) that never escapes the
//	   physical allocation — triggered but harmless
//	#8 growth path guarded by window > 100 — never triggered
//	#9 incorrect comment handling: drops the token after each kept
//	   comment — wrong output, never crashes
func Moss() *Subject {
	return &Subject{
		Name:        "moss",
		Description: "winnowing document fingerprinting (MOSS analog)",
		HasOracle:   true,
		Bugs: []Bug{
			{ID: 1, Kind: KindBufferOverrun, Description: "passages array overrun when matches exceed max_passages"},
			{ID: 2, Kind: KindNullDeref, Description: "null token buffer for empty language-19 files"},
			{ID: 3, Kind: KindMissingCheck, Description: "hash bucket traversal misses end-of-list check"},
			{ID: 4, Kind: KindBufferOverrun, Description: "token_sequence overrun past 500 tokens"},
			{ID: 5, Kind: KindMissingCheck, Description: "language id above 16 indexes past the language tables"},
			{ID: 6, Kind: KindMissingCheck, Description: "stream EOF (-1) size reaches the allocator"},
			{ID: 7, Kind: KindHarmless, Description: "window scratch overrun contained by slack slot"},
			{ID: 8, Kind: KindNeverTriggered, Description: "grow path requires window > 100, never generated"},
			{ID: 9, Kind: KindOutputOnly, Description: "token after kept comment dropped (wrong output)"},
		},
		template: mossTemplate,
		snippets: map[string]snippet{
			"bug1_check": {
				buggy: `if (passage_index == config->max_passages) { observe_bug(1); }`,
				fixed: `if (passage_index >= config->max_passages) { return; }`,
			},
			"bug2_alloc": {
				buggy: `if (lang == 19) { observe_bug(2); } else { files[idx].tokens = new int[1]; }`,
				fixed: `files[idx].tokens = new int[1];`,
			},
			"bug3_loop": {
				buggy: `while (p->fp != fp) {
    if (p->next == null) { observe_bug(3); }
    p = p->next;
  }`,
				fixed: `while (p != null && p->fp != fp) {
    p = p->next;
  }
  if (p == null) { return 0; }`,
			},
			"bug4_check": {
				buggy: `if (token_index == 500) { observe_bug(4); }`,
				fixed: `if (token_index >= 500) { return; }`,
			},
			"bug5_check": {
				buggy: `if (language > 16) { observe_bug(5); }`,
				fixed: `if (language > 16) { language = 16; }`,
			},
			"bug6_check": {
				buggy: `if (size < 0) { observe_bug(6); }`,
				fixed: `if (size < 0) {
    files[idx].language = lang;
    files[idx].size = 0;
    files[idx].tokens = new int[1];
    files[idx].tokens[0] = 9999;
    return 0;
  }`,
			},
			"bug7_extra": {
				buggy: `if (w == 11 && pos == 3 * w) { observe_bug(7); window_buf[w] = hashes[pos]; }`,
				fixed: ``,
			},
			"bug9_skip": {
				buggy: `if (i + 1 < size) { observe_bug(9); i = i + 1; }`,
				fixed: ``,
			},
		},
		genInput: mossGen,
	}
}

const mossTemplate = `
// MOSS analog: winnowing document fingerprinting.
struct Config {
  int match_comment;
  int winnowing_window_size;
  int noise_threshold;
  int max_passages;
}

struct File {
  int language;
  int size;
  int* tokens;
}

struct Passage {
  int fileid;
  int first_token;
  int last_token;
  int fingerprint;
}

struct Bucket {
  int fp;
  int count;
  Bucket* next;
}

Config* config;
File* files;
int nfiles = 0;
int filesindex = 0;

int* token_sequence;
int token_index = 0;

Passage* passages;
int passage_index = 0;

int marker_seen = 0;
int marker_fp = 0;

Bucket** buckets;
int* hash_seen;

int* langtab;
string* lang_names;
int* lang_scratch;

int read_config() {
  config = new Config;
  config->match_comment = arg(0);
  config->winnowing_window_size = arg(1);
  config->noise_threshold = arg(2);
  config->max_passages = 12;
  nfiles = arg(3);
  if (nfiles < 1) { return -1; }
  if (nfiles > 16) { nfiles = 16; }
  if (config->winnowing_window_size < 2) { config->winnowing_window_size = 2; }
  if (config->noise_threshold < 2) { config->noise_threshold = 2; }
  return 0;
}

void init_tables() {
  langtab = new int[17];
  lang_names = new string[17];
  lang_scratch = new int[32];
  for (int i = 0; i < 17; i = i + 1) {
    langtab[i] = i * 3 + 1;
    lang_names[i] = "lang" + itoa(i);
  }
  buckets = new Bucket*[64];
  hash_seen = new int[64];
  token_sequence = new int[500];
  passages = new Passage[12];
}

// language_weight maps a language id to its token weight. Language ids
// above 16 are out of range for the tables.
int language_weight(int language) {
  @{bug5_check}
  int w = langtab[language];
  string name = lang_names[language];
  if (strlen(name) < 4) { output("short lang name"); }
  return w;
}

// read_file reads one file header and token list from the input
// stream. Returns the token count, or -1 on end of stream.
int read_file(int idx) {
  int lang = read();
  if (lang < 0) { return -1; }
  int size = read();
  @{bug6_check}
  files[idx].language = lang;
  files[idx].size = size;
  if (size == 0) {
    @{bug2_alloc}
    files[idx].tokens[0] = 9999;
    return 0;
  }
  files[idx].tokens = new int[size];
  for (int i = 0; i < size; i = i + 1) {
    int t = read();
    if (t < 0) { t = 0; }
    files[idx].tokens[i] = t;
  }
  return size;
}

// filter_comments rewrites a file's token list according to the
// comment-matching configuration. Tokens in [9000, 9999) open a
// comment terminated by 9999. Returns the new token count.
int filter_comments(int idx) {
  int size = files[idx].size;
  int* toks = files[idx].tokens;
  int* outbuf = new int[size + 1];
  int n = 0;
  int i = 0;
  while (i < size) {
    int t = toks[i];
    if (t >= 9000 && t < 9999) {
      if (config->match_comment == 1) {
        outbuf[n] = t;
        n = n + 1;
        i = i + 1;
        while (i < size && toks[i] != 9999) {
          outbuf[n] = toks[i];
          n = n + 1;
          i = i + 1;
        }
        if (i < size) {
          outbuf[n] = 9999;
          n = n + 1;
          @{bug9_skip}
        }
        i = i + 1;
      } else {
        i = i + 1;
        while (i < size && toks[i] != 9999) {
          i = i + 1;
        }
        i = i + 1;
      }
    } else {
      outbuf[n] = t;
      n = n + 1;
      i = i + 1;
    }
  }
  files[idx].size = n;
  files[idx].tokens = outbuf;
  return n;
}

// append_token accumulates every filtered token into the global
// sequence buffer (capacity 500).
void append_token(int t) {
  @{bug4_check}
  token_sequence[token_index] = t;
  token_index = token_index + 1;
}

// insert_bucket records one occurrence of fp and returns its total
// count so far.
int insert_bucket(int fp, int h) {
  Bucket* p = buckets[h];
  while (p != null) {
    if (p->fp == fp) {
      p->count = p->count + 1;
      return p->count;
    }
    p = p->next;
  }
  Bucket* b = new Bucket;
  b->fp = fp;
  b->count = 1;
  b->next = buckets[h];
  buckets[h] = b;
  return 1;
}

// bucket_count looks up the count of a previously recorded
// fingerprint. Only called when the bucket is known non-empty.
int bucket_count(int fp) {
  int h = fp % 64;
  if (h < 0) { h = 0 - h; }
  Bucket* p = buckets[h];
  @{bug3_loop}
  return p->count;
}

void add_passage(int fileid, int first, int last, int fp) {
  @{bug1_check}
  passages[passage_index].fileid = fileid;
  passages[passage_index].first_token = first;
  passages[passage_index].last_token = last;
  passages[passage_index].fingerprint = fp;
  passage_index = passage_index + 1;
}

// record_fingerprint notes one selected fingerprint; repeats become
// candidate passages.
void record_fingerprint(int fileid, int fp, int first, int last) {
  int h = fp % 64;
  if (h < 0) { h = 0 - h; }
  int c = insert_bucket(fp, h);
  hash_seen[h] = 1;
  if (c > 1) {
    add_passage(fileid, first, last, fp);
  }
}

// fingerprint_file hashes k-grams and winnows them with the configured
// window, recording selected fingerprints. Returns the number
// selected.
int fingerprint_file(int idx) {
  int size = files[idx].size;
  if (size == 0) { return 0; }
  int k = config->noise_threshold;
  int w = config->winnowing_window_size;
  int weight = language_weight(files[idx].language);
  if (size < k) { return 0; }
  int nh = size - k + 1;
  int* hashes = new int[nh];
  int* toks = files[idx].tokens;
  for (int i = 0; i < nh; i = i + 1) {
    int h = 0;
    for (int j = 0; j < k; j = j + 1) {
      h = h * 31 + toks[i + j] + weight;
      h = h % 1000003;
    }
    hashes[i] = h;
  }
  int* window_buf = new int[w + 1];
  if (nh < w) { w = nh; }
  int last_min = -1;
  int selected = 0;
  for (int pos = 0; pos + w <= nh; pos = pos + 1) {
    int min_index = pos;
    for (int j = 0; j < w; j = j + 1) {
      window_buf[j] = hashes[pos + j];
      if (hashes[pos + j] < hashes[min_index]) { min_index = pos + j; }
    }
    @{bug7_extra}
    if (min_index != last_min) {
      last_min = min_index;
      record_fingerprint(idx, hashes[min_index], min_index, min_index + k - 1);
      selected = selected + 1;
    }
  }
  return selected;
}

// report_matches pairs up passages with equal fingerprints from
// different files.
int report_matches() {
  int nmatches = 0;
  for (int i = 0; i < passage_index; i = i + 1) {
    for (int j = 0; j < i; j = j + 1) {
      if (passages[i].fingerprint == passages[j].fingerprint && passages[i].fileid != passages[j].fileid) {
        output("match ", passages[j].fileid, " ", passages[i].fileid, " ", passages[i].fingerprint);
        nmatches = nmatches + 1;
      }
    }
  }
  return nmatches;
}

int main() {
  int rc = read_config();
  if (rc < 0) {
    output("usage: moss <match_comment> <window> <noise> <nfiles>");
    return 1;
  }
  init_tables();
  if (config->winnowing_window_size > 100) {
    // Grow the passage table for huge windows (dead in practice).
    observe_bug(8);
    passages = new Passage[24];
  }
  files = new File[nfiles];
  for (filesindex = 0; filesindex < nfiles; filesindex = filesindex + 1) {
    int got = read_file(filesindex);
    if (got < 0) {
      nfiles = filesindex;
    }
  }
  int total = 0;
  for (filesindex = 0; filesindex < nfiles; filesindex = filesindex + 1) {
    int n = filter_comments(filesindex);
    int* toks = files[filesindex].tokens;
    for (int i = 0; i < n; i = i + 1) {
      if (toks[i] == 8888) {
        marker_seen = 1;
        marker_fp = (8888 * 131 + i * 7 + 3) % 1000003;
      }
      append_token(toks[i]);
    }
    total = total + n;
  }
  for (filesindex = 0; filesindex < nfiles; filesindex = filesindex + 1) {
    int sel = fingerprint_file(filesindex);
    output("file ", filesindex, " fingerprints ", sel);
  }
  if (marker_seen == 1) {
    // Excluded-region markers are looked up in the fingerprint table;
    // they are almost never actually recorded there.
    int mh = marker_fp % 64;
    if (mh < 0) { mh = 0 - mh; }
    if (hash_seen[mh] == 1) {
      int mc = bucket_count(marker_fp);
      output("marker ", mc);
    }
  }
  int nm = report_matches();
  output("tokens ", total, " matches ", nm);
  return 0;
}
`

// mossGen generates a random MOSS input: a configuration vector plus a
// token stream of nfiles (language, size, tokens...) records.
func mossGen(idx int64) interp.Input {
	r := newGenRNG("moss", idx)
	matchComment := r.intn(2)
	window := 2 + r.intn(10) // 2..11
	noise := 2 + r.intn(4)   // 2..5
	nfiles := 2 + r.intn(4)  // 2..5
	args := []int64{matchComment, window, noise, nfiles}

	// A shared token segment planted across files produces matches
	// (and, when long, triggers the passage-table overrun, bug #1).
	var shared []int64
	if r.chance(0.35) {
		l := 8 + r.intn(50)
		for i := int64(0); i < l; i++ {
			shared = append(shared, 1+r.intn(800))
		}
	}
	// Rarely, the stream ends right after some file's language id
	// (bug #6's missing EOF check).
	truncateAtFile := int64(-1)
	if r.chance(0.04) {
		truncateAtFile = r.intn(nfiles)
	}

	var stream []int64
	for f := int64(0); f < nfiles; f++ {
		lang := r.intn(17)
		if r.chance(0.015) {
			lang = 17 + r.intn(4)
		}
		sizeZero := r.chance(0.03)
		if sizeZero && r.chance(0.08) {
			lang = 19 // bug #2's rare configuration
		}
		stream = append(stream, lang)
		if f == truncateAtFile {
			break
		}
		if sizeZero {
			stream = append(stream, 0)
			continue
		}
		var toks []int64
		base := 10 + r.intn(110)
		commentAt := int64(-1)
		if r.chance(0.08) {
			commentAt = r.intn(base)
		}
		markerAt := int64(-1)
		if r.chance(0.012) {
			markerAt = r.intn(base)
		}
		for i := int64(0); i < base; i++ {
			switch i {
			case commentAt:
				toks = append(toks, 9000+r.intn(900))
				cl := 1 + r.intn(5)
				for j := int64(0); j < cl; j++ {
					toks = append(toks, 1+r.intn(800))
				}
				toks = append(toks, 9999)
			case markerAt:
				toks = append(toks, 8888)
			default:
				toks = append(toks, 1+r.intn(800))
			}
		}
		if shared != nil && r.chance(0.8) {
			toks = append(toks, shared...)
		}
		stream = append(stream, int64(len(toks)))
		stream = append(stream, toks...)
	}
	return interp.Input{Args: args, Stream: stream, Seed: idx}
}
