package subjects

import "cbi/internal/interp"

// Rhythmbox returns the RHYTHMBOX analog: an event-driven system with a
// heap-allocated event queue, modeled on the multi-threaded, signal-
// driven music player of §4.2.4. Two bugs mirror the paper's findings:
//
//	#1 a race analog: timer events still queued when the player is
//	   destroyed dereference its freed private state
//	#2 an incorrect object-library usage pattern: the change-signal
//	   handler drops a reference it does not own, eventually freeing
//	   the view while it is still in use (the paper's bug that a
//	   syntactic scan later found >100 instances of)
//
// The paper notes stack inspection is useless here because all the
// interesting state lives in the event queue; crashes happen in the
// main loop's dispatch with varying stacks.
func Rhythmbox() *Subject {
	return &Subject{
		Name:        "rhythmbox",
		Description: "event-driven player (RHYTHMBOX analog)",
		Bugs: []Bug{
			{ID: 1, Kind: KindRace, Description: "queued timer event fires after player destroyed"},
			{ID: 2, Kind: KindInvariantViolation, Description: "change-signal handler drops unowned view reference"},
		},
		template: rhythmboxTemplate,
		snippets: map[string]snippet{
			"bug1_check": {
				buggy: `if (o->priv == null) { observe_bug(1); }`,
				fixed: `if (o->priv == null) { return; }`,
			},
			"bug2_unref": {
				buggy: `if (view->priv != null && view->priv->refcount == 1) { observe_bug(2); }
  unref_view(view);`,
				fixed: ``,
			},
			"bug2_guard": {
				buggy: ``,
				fixed: `if (o->priv == null) { return; }`,
			},
			"bug2_render_guard": {
				buggy: ``,
				fixed: `if (view->priv == null) { return; }`,
			},
		},
		genInput: rhythmboxGen,
	}
}

const rhythmboxTemplate = `
// RHYTHMBOX analog: object system plus event queue.
// Event codes: 1 timer tick, 2 play, 3 destroy player, 4 queue change
// signal, 5 emit render signal, 6 change-signal handler, 7 render
// view, 8 status update.
struct Priv {
  int timer;
  int refcount;
  int db;
  int change_sig_queued;
  int handling_error;
}

struct Obj {
  Priv* priv;
  int kind;
}

struct Event {
  int code;
  Event* next;
}

Event* queue_head;
Event* queue_tail;
Obj* player;
Obj* view;
Obj* shell;
int events_handled = 0;
int songs_played = 0;

Obj* new_obj(int kind) {
  Obj* o = new Obj;
  o->kind = kind;
  o->priv = new Priv;
  o->priv->refcount = 3;
  o->priv->db = 1;
  return o;
}

void enqueue(int code) {
  Event* e = new Event;
  e->code = code;
  if (queue_tail == null) {
    queue_head = e;
    queue_tail = e;
  } else {
    queue_tail->next = e;
    queue_tail = e;
  }
}

int dequeue() {
  if (queue_head == null) { return -1; }
  Event* e = queue_head;
  queue_head = e->next;
  if (queue_head == null) { queue_tail = null; }
  return e->code;
}

// handle_timer advances the player clock. The player may already have
// been destroyed by an earlier event still leaving timers queued.
void handle_timer(Obj* o) {
  @{bug1_check}
  int t = o->priv->timer;
  o->priv->timer = t + 1;
  if (o->priv->timer % 10 == 0) {
    enqueue(8);
  }
}

void handle_play(Obj* o) {
  if (o->priv == null) { return; }
  songs_played = songs_played + 1;
  o->priv->db = songs_played % 7 + 1;
}

void destroy_player(Obj* o) {
  o->priv = null;
}

// unref_view drops one reference to the view, freeing it at zero.
void unref_view(Obj* o) {
  @{bug2_guard}
  int rc = o->priv->refcount;
  o->priv->refcount = rc - 1;
  if (o->priv->refcount <= 0) {
    o->priv = null;
  }
}

// on_change_sig reacts to a model change notification.
void on_change_sig() {
  @{bug2_render_guard}
  view->priv->change_sig_queued = 0;
  enqueue(7);
  @{bug2_unref}
}

// render_view paints the view from the database handle.
void render_view() {
  @{bug2_render_guard}
  int db = view->priv->db;
  if (db == 0) {
    view->priv->handling_error = 1;
    return;
  }
  output("render ", db);
}

void status_update() {
  if (shell->priv == null) { return; }
  shell->priv->db = events_handled;
}

void dispatch(int code) {
  if (code == 1) { handle_timer(player); }
  if (code == 2) { handle_play(player); }
  if (code == 3) { destroy_player(player); }
  if (code == 4) {
    if (view->priv != null) {
      view->priv->change_sig_queued = 1;
    }
    enqueue(6);
  }
  if (code == 5) { enqueue(7); }
  if (code == 6) { on_change_sig(); }
  if (code == 7) { render_view(); }
  if (code == 8) { status_update(); }
}

int main() {
  player = new_obj(1);
  view = new_obj(2);
  shell = new_obj(3);
  int code = read();
  while (code >= 0) {
    enqueue(code);
    code = read();
  }
  int c = dequeue();
  while (c >= 0 && events_handled < 500) {
    events_handled = events_handled + 1;
    dispatch(c);
    c = dequeue();
  }
  output("handled ", events_handled, " played ", songs_played);
  return 0;
}
`

func rhythmboxGen(idx int64) interp.Input {
	r := newGenRNG("rhythmbox", idx)
	n := 6 + r.intn(30)
	destroyAt := int64(-1)
	if r.chance(0.4) {
		destroyAt = r.intn(n)
	}
	var stream []int64
	for i := int64(0); i < n; i++ {
		if i == destroyAt {
			stream = append(stream, 3)
			continue
		}
		// Weighted event mix: timers and plays dominate; signal
		// traffic (4 -> 6 -> 7) drives the refcount bug.
		switch x := r.intn(10); {
		case x < 3:
			stream = append(stream, 1)
		case x < 5:
			stream = append(stream, 2)
		case x < 7:
			stream = append(stream, 4)
		case x < 8:
			stream = append(stream, 5)
		default:
			stream = append(stream, 8)
		}
	}
	return interp.Input{Stream: stream, Seed: idx}
}
