package subjects

import "cbi/internal/interp"

// Ccrypt returns the CCRYPT analog: a small stream cipher tool with the
// known input-validation bug of ccrypt 1.2 (paper §4.2.1): when the
// output file already exists the tool prompts for confirmation, and an
// end-of-input (empty) response reaches character processing without
// validation, crashing deterministically.
func Ccrypt() *Subject {
	return &Subject{
		Name:        "ccrypt",
		Description: "stream cipher tool (CCRYPT analog)",
		Bugs: []Bug{
			{ID: 1, Kind: KindInputValidation, Description: "EOF/empty prompt response reaches char_at unchecked"},
		},
		template: ccryptTemplate,
		snippets: map[string]snippet{
			"bug1_check": {
				buggy: `if (res == 0) { observe_bug(1); }`,
				fixed: `if (res == 0) { return 0; }`,
			},
		},
		genInput: ccryptGen,
	}
}

const ccryptTemplate = `
// CCRYPT analog: rotating additive stream cipher.
struct Key {
  int length;
  int* sched;
}

int mode = 0;
int exists = 0;

// make_key derives the key schedule from the passphrase.
Key* make_key(string pass) {
  Key* k = new Key;
  int n = strlen(pass);
  if (n < 1) {
    k->length = 1;
    k->sched = new int[1];
    k->sched[0] = 7;
    return k;
  }
  k->length = n;
  k->sched = new int[n];
  for (int i = 0; i < n; i = i + 1) {
    k->sched[i] = (char_at(pass, i) * 17 + i) % 251;
  }
  return k;
}

// prompt_overwrite reads the user's overwrite confirmation. An empty
// response models EOF on stdin.
int prompt_overwrite() {
  string line = sarg(1);
  int res = strlen(line);
  @{bug1_check}
  int c = char_at(line, 0);
  if (c == 121 || c == 89) { return 1; }
  return 0;
}

// process enciphers or deciphers the data stream.
int process(Key* k) {
  int count = 0;
  int pos = 0;
  int v = read();
  while (v >= 0) {
    int enc = 0;
    if (mode == 0) {
      enc = (v + k->sched[pos]) % 256;
    } else {
      enc = (v - k->sched[pos] + 256) % 256;
    }
    output(enc);
    count = count + 1;
    pos = pos + 1;
    if (pos >= k->length) { pos = 0; }
    v = read();
  }
  return count;
}

int main() {
  mode = arg(0);
  exists = arg(1);
  Key* k = make_key(sarg(0));
  if (exists == 1) {
    int ok = prompt_overwrite();
    if (ok == 0) {
      output("not overwritten");
      return 0;
    }
  }
  int n = process(k);
  output("bytes ", n);
  return 0;
}
`

func ccryptGen(idx int64) interp.Input {
	r := newGenRNG("ccrypt", idx)
	mode := r.intn(2)
	exists := int64(0)
	if r.chance(0.6) {
		exists = 1
	}
	key := randWord(r, 1+r.intn(12))
	resp := ""
	if exists == 1 {
		switch {
		case r.chance(0.5):
			resp = "" // EOF at the prompt: the bug's trigger
		case r.chance(0.5):
			resp = "y"
		default:
			resp = randWord(r, 1+r.intn(4))
		}
	}
	n := 5 + r.intn(56)
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = r.intn(256)
	}
	return interp.Input{
		Args:   []int64{mode, exists},
		SArgs:  []string{key, resp},
		Stream: stream,
		Seed:   idx,
	}
}

func randWord(r *genRNG, n int64) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.intn(26))
	}
	return string(b)
}
