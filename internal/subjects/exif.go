package subjects

import "cbi/internal/interp"

// Exif returns the EXIF analog: a binary tag parser modeled on the
// exif 0.6.9 command-line tool, with three distinct crashing bugs
// mirroring the paper's §4.2.3 findings:
//
//	#1 a value offset smaller than the component count produces a
//	   negative buffer index ("i < 0")
//	#2 an ASCII tag longer than the 1900-slot text buffer overruns it
//	   ("maxlen > 1900")
//	#3 the canon maker-note loader returns early when o + s >
//	   buf_size, leaving entries[i].data unallocated; the save path
//	   then passes the null pointer to memcpy (the paper's detailed
//	   case study, crashing far from the cause with a deep stack)
func Exif() *Subject {
	return &Subject{
		Name:        "exif",
		Description: "image tag parser (EXIF analog)",
		Bugs: []Bug{
			{ID: 1, Kind: KindMissingCheck, Description: "negative index when offset < count"},
			{ID: 2, Kind: KindBufferOverrun, Description: "ascii tag overruns 1900-slot text buffer"},
			{ID: 3, Kind: KindUninitialized, Description: "early return leaves entry data null; memcpy crashes later"},
		},
		template: exifTemplate,
		snippets: map[string]snippet{
			"bug1_check": {
				buggy: `if (i < 0) { observe_bug(1); }`,
				fixed: `if (i < 0) { return 0; }`,
			},
			"bug2_check": {
				buggy: `if (maxlen > 1900) { observe_bug(2); }`,
				fixed: `if (maxlen > 1900) { maxlen = 1900; }`,
			},
			"bug3_return": {
				buggy: `observe_bug(3);
      return 0;`,
				fixed: `n->count = i;
      return 0;`,
			},
		},
		genInput: exifGen,
	}
}

const exifTemplate = `
// EXIF analog: fixed-buffer tag directory parser and re-serializer.
struct Entry {
  int tag;
  int size;
  int* data;
}

struct Note {
  int count;
  Entry* entries;
}

int buf_size = 0;
int* buf;
int* text_buf;
int checksum = 0;

// load_tag reads one directory tag: (tag, count, offset).
// Returns the tag's contribution to the checksum.
int load_tag() {
  int tag = read();
  int count = read();
  int offset = read();
  if (count < 0) { count = 0; }
  if (offset < 0) { offset = 0; }
  if (count > buf_size) { count = buf_size; }
  if (offset >= buf_size) { offset = buf_size - 1; }
  // The value block ends at offset; it starts count slots earlier.
  int i = offset - count;
  @{bug1_check}
  int sum = 0;
  for (int j = i; j <= offset; j = j + 1) {
    sum = sum + buf[j];
  }
  if (tag == 2) {
    // ASCII tag: widen into the text buffer.
    int maxlen = count * 64;
    @{bug2_check}
    for (int j = 0; j < maxlen; j = j + 1) {
      text_buf[j] = sum + j;
    }
  }
  return sum;
}

// mnote_load parses the canon maker note: c entries of (o, s).
int mnote_load(Note* n, int c) {
  n->count = 0;
  n->entries = new Entry[c];
  for (int i = 0; i < c; i = i + 1) {
    int o = read();
    int s = read();
    if (o < 0) { o = 0; }
    if (s < 0) { s = 0; }
    n->count = i + 1;
    n->entries[i].tag = i;
    n->entries[i].size = s;
    if (o + s > buf_size) {
      @{bug3_return}
    }
    n->entries[i].data = new int[s + 1];
    for (int j = 0; j < s; j = j + 1) {
      n->entries[i].data[j] = buf[o + j];
    }
  }
  return n->count;
}

void memcpy_sim(int* dst, int* src, int s) {
  for (int j = 0; j < s; j = j + 1) {
    dst[j] = src[j];
  }
}

void mnote_save_entry(Note* n, int i) {
  int s = n->entries[i].size;
  int* out = new int[s + 1];
  memcpy_sim(out, n->entries[i].data, s);
  if (s > 0) {
    checksum = checksum + out[0];
  }
}

void mnote_save(Note* n) {
  for (int i = 0; i < n->count; i = i + 1) {
    mnote_save_entry(n, i);
  }
}

void save_data(Note* n) {
  mnote_save(n);
  output("checksum ", checksum);
}

int main() {
  buf_size = read();
  if (buf_size < 4) { buf_size = 4; }
  if (buf_size > 4000) { buf_size = 4000; }
  buf = new int[buf_size];
  text_buf = new int[1900];
  for (int i = 0; i < buf_size; i = i + 1) {
    int v = read();
    if (v < 0) { v = 0; }
    buf[i] = v;
  }
  int ntags = read();
  if (ntags < 0) { ntags = 0; }
  if (ntags > 16) { ntags = 16; }
  for (int t = 0; t < ntags; t = t + 1) {
    checksum = checksum + load_tag();
  }
  int c = read();
  if (c < 1) { c = 1; }
  if (c > 12) { c = 12; }
  Note* n = new Note;
  int loaded = mnote_load(n, c);
  output("entries ", loaded);
  save_data(n);
  return 0;
}
`

func exifGen(idx int64) interp.Input {
	r := newGenRNG("exif", idx)
	bufSize := 8 + r.intn(120)
	var stream []int64
	stream = append(stream, bufSize)
	for i := int64(0); i < bufSize; i++ {
		stream = append(stream, r.intn(256))
	}
	ntags := 1 + r.intn(8)
	stream = append(stream, ntags)
	for t := int64(0); t < ntags; t++ {
		tag := 1 + r.intn(4)
		count := 1 + r.intn(8)
		if count >= bufSize {
			count = bufSize - 1
		}
		offset := count + r.intn(bufSize-count+1)
		if offset >= bufSize {
			offset = bufSize - 1
		}
		switch {
		case r.chance(0.02):
			// Bug #1's trigger: the count exceeds the offset, making
			// the value start index negative.
			offset = r.intn(count)
		case r.chance(0.02) && bufSize >= 40:
			// Bug #2's trigger: a huge ASCII count (count*64 > 1900).
			// Keep offset >= count so bug #1 stays untriggered.
			count = 30 + r.intn(bufSize-30)
			if count > 69 {
				count = 69
			}
			offset = bufSize - 1
			tag = 2
		}
		stream = append(stream, tag, count, offset)
	}
	// Maker note entries. Bug #3's trigger: o + s > buf_size, rare.
	c := 1 + r.intn(8)
	stream = append(stream, c)
	for e := int64(0); e < c; e++ {
		s := 1 + r.intn(6)
		o := r.intn(bufSize - s + 1)
		if r.chance(0.0008) {
			o = bufSize - s + 1 + r.intn(16) // just past the end
		}
		stream = append(stream, o, s)
	}
	return interp.Input{Stream: stream, Seed: idx}
}
