// Package subjects provides the five MiniC analog programs used to
// reproduce the paper's case studies (§4): MOSS, CCRYPT, BC, EXIF and
// RHYTHMBOX. Each subject is a realistic miniature of the original
// program's core algorithm, seeded with bugs of the same kinds as the
// originals (see DESIGN.md for the substitution table), plus a random
// input generator.
//
// Every bug is expressed as a template slot with a buggy and a fixed
// variant. Rendering with all slots buggy yields the experiment binary;
// rendering with all slots fixed yields the reference used as an output
// oracle for non-crashing bugs (paper §4.1: "we also ran a correct
// version of MOSS and compared the output of the two versions").
// Ground truth is recorded by observe_bug(k) intrinsics placed inside
// the buggy variants, exactly where the bad event occurs.
package subjects

import (
	"fmt"
	"strings"
	"sync"

	"cbi/internal/interp"
	"cbi/internal/lang"
)

// BugKind classifies a seeded bug, mirroring the paper's inventory.
type BugKind int

// Bug kinds.
const (
	KindBufferOverrun BugKind = iota
	KindNullDeref
	KindMissingCheck
	KindInvariantViolation
	KindOutputOnly
	KindNeverTriggered
	KindHarmless
	KindRace
	KindInputValidation
	KindUninitialized
)

// String names the kind.
func (k BugKind) String() string {
	switch k {
	case KindBufferOverrun:
		return "buffer overrun"
	case KindNullDeref:
		return "null pointer dereference"
	case KindMissingCheck:
		return "missing check"
	case KindInvariantViolation:
		return "data-structure invariant violation"
	case KindOutputOnly:
		return "incorrect output (non-crashing)"
	case KindNeverTriggered:
		return "never triggered"
	case KindHarmless:
		return "triggered but harmless"
	case KindRace:
		return "event-ordering race"
	case KindInputValidation:
		return "input validation"
	case KindUninitialized:
		return "uninitialized data"
	}
	return fmt.Sprintf("BugKind(%d)", int(k))
}

// Bug describes one seeded bug.
type Bug struct {
	ID          int
	Kind        BugKind
	Description string
}

// snippet holds the buggy and fixed variants of one template slot.
type snippet struct {
	buggy string
	fixed string
}

// Subject is one case-study program.
type Subject struct {
	Name        string
	Description string
	Bugs        []Bug
	// HasOracle indicates failures should also be labeled by output
	// comparison against the reference version (needed for
	// non-crashing bugs).
	HasOracle bool

	template string
	snippets map[string]snippet
	// genInput produces the random input for run index idx.
	genInput func(idx int64) interp.Input

	mu       sync.Mutex
	compiled map[string]*lang.Program
}

// Source renders the MiniC source. If buggyMask is nil every slot is
// buggy; otherwise slot k is buggy iff buggyMask[k] (keys are bug ids;
// slots named "bugK_*" belong to bug K).
func (s *Subject) Source(buggy bool) string {
	src := s.template
	for name, sn := range s.snippets {
		text := sn.fixed
		if buggy {
			text = sn.buggy
		}
		src = strings.ReplaceAll(src, "@{"+name+"}", text)
	}
	if i := strings.Index(src, "@{"); i >= 0 {
		end := i + 40
		if end > len(src) {
			end = len(src)
		}
		panic(fmt.Sprintf("subjects: %s: unresolved template slot near %q", s.Name, src[i:end]))
	}
	return src
}

// Program compiles (and caches) the buggy or reference program.
func (s *Subject) Program(buggy bool) *lang.Program {
	key := "fixed"
	if buggy {
		key = "buggy"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compiled == nil {
		s.compiled = map[string]*lang.Program{}
	}
	if p, ok := s.compiled[key]; ok {
		return p
	}
	src := s.Source(buggy)
	prog, err := lang.Parse(s.Name+"-"+key+".mc", src)
	if err != nil {
		panic(fmt.Sprintf("subjects: %s (%s) does not parse: %v", s.Name, key, err))
	}
	if err := lang.Resolve(prog); err != nil {
		panic(fmt.Sprintf("subjects: %s (%s) does not resolve: %v", s.Name, key, err))
	}
	s.compiled[key] = prog
	return prog
}

// Input returns the generated input for run idx. Inputs are
// deterministic in idx.
func (s *Subject) Input(idx int64) interp.Input { return s.genInput(idx) }

// All returns the five case-study subjects in the paper's table order.
func All() []*Subject {
	return []*Subject{Moss(), Ccrypt(), Bc(), Exif(), Rhythmbox()}
}

// ByName returns the named subject or nil.
func ByName(name string) *Subject {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// genRNG is the deterministic generator RNG shared by the input
// generators (splitmix64 over the run index, namespaced per subject).
type genRNG struct{ state uint64 }

func newGenRNG(subject string, idx int64) *genRNG {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(subject); i++ {
		h ^= uint64(subject[i])
		h *= 1099511628211
	}
	return &genRNG{state: h ^ uint64(idx)*0x9e3779b97f4a7c15}
}

func (r *genRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int64 in [0, n).
func (r *genRNG) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// chance returns true with probability p.
func (r *genRNG) chance(p float64) bool {
	return float64(r.next()>>11)/(1<<53) < p
}
