package subjects

import (
	"strings"
	"testing"

	"cbi/internal/interp"
)

func TestAllSubjectsCompile(t *testing.T) {
	for _, s := range All() {
		t.Run(s.Name, func(t *testing.T) {
			if p := s.Program(true); p == nil {
				t.Fatal("buggy program nil")
			}
			if p := s.Program(false); p == nil {
				t.Fatal("fixed program nil")
			}
		})
	}
}

func TestSourcesDiffer(t *testing.T) {
	for _, s := range All() {
		if s.Source(true) == s.Source(false) {
			t.Errorf("%s: buggy and fixed sources are identical", s.Name)
		}
	}
}

func TestInputsDeterministic(t *testing.T) {
	for _, s := range All() {
		a, b := s.Input(42), s.Input(42)
		c := s.Input(43)
		if len(a.Stream) != len(b.Stream) || a.Seed != b.Seed {
			t.Errorf("%s: same index produced different inputs", s.Name)
		}
		for i := range a.Stream {
			if a.Stream[i] != b.Stream[i] {
				t.Errorf("%s: stream differs at %d", s.Name, i)
				break
			}
		}
		same := len(a.Stream) == len(c.Stream)
		if same {
			for i := range a.Stream {
				if a.Stream[i] != c.Stream[i] {
					same = false
					break
				}
			}
		}
		if same && len(a.Args) == len(c.Args) {
			allArgsSame := true
			for i := range a.Args {
				if a.Args[i] != c.Args[i] {
					allArgsSame = false
				}
			}
			if allArgsSame && len(a.Stream) > 0 {
				t.Errorf("%s: adjacent indices produced identical inputs", s.Name)
			}
		}
	}
}

// TestFixedVersionNeverCrashes is the oracle soundness requirement: the
// reference must terminate cleanly on every generated input.
func TestFixedVersionNeverCrashes(t *testing.T) {
	const n = 500
	for _, s := range All() {
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Program(false)
			in := interp.New(prog, nil)
			for i := int64(0); i < n; i++ {
				out := in.Run(s.Input(i))
				if out.Crashed {
					t.Fatalf("reference crashed on input %d: %s: %s (stack %v)",
						i, out.Trap, out.Msg, out.Stack)
				}
			}
		})
	}
}

// TestBuggyVersionFailureProfile checks that the buggy version crashes
// on a plausible fraction of runs and that every seeded bug (except the
// never-triggered one) actually occurs.
func TestBuggyVersionFailureProfile(t *testing.T) {
	const n = 2000
	for _, s := range All() {
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Program(true)
			in := interp.New(prog, nil)
			crashes := 0
			occurred := map[int]int{}
			failedWith := map[int]int{}
			for i := int64(0); i < n; i++ {
				out := in.Run(s.Input(i))
				if out.Crashed {
					crashes++
				}
				for _, b := range out.BugsObserved {
					occurred[b]++
					if out.Crashed {
						failedWith[b]++
					}
				}
			}
			rate := float64(crashes) / n
			t.Logf("%s: crash rate %.3f, occurrences %v, crash-co-occurrence %v",
				s.Name, rate, occurred, failedWith)
			if rate < 0.02 {
				t.Errorf("crash rate %.4f too low for statistical debugging", rate)
			}
			if rate > 0.8 {
				t.Errorf("crash rate %.4f implausibly high", rate)
			}
			for _, b := range s.Bugs {
				switch b.Kind {
				case KindNeverTriggered:
					if occurred[b.ID] != 0 {
						t.Errorf("bug #%d should never trigger, occurred %d times", b.ID, occurred[b.ID])
					}
				case KindHarmless, KindOutputOnly:
					if occurred[b.ID] == 0 {
						t.Errorf("bug #%d (%s) never occurred in %d runs", b.ID, b.Kind, n)
					}
				default:
					if occurred[b.ID] == 0 {
						t.Errorf("bug #%d (%s) never occurred in %d runs", b.ID, b.Kind, n)
					}
					if failedWith[b.ID] == 0 {
						t.Errorf("bug #%d (%s) never co-occurred with a crash", b.ID, b.Kind)
					}
				}
			}
		})
	}
}

// TestMossOracleCatchesOutputBug: bug #9 never crashes; only output
// comparison against the reference reveals it.
func TestMossOracleCatchesOutputBug(t *testing.T) {
	s := Moss()
	buggy := interp.New(s.Program(true), nil)
	ref := interp.New(s.Program(false), nil)
	const n = 3000
	mismatches, bug9Mismatches := 0, 0
	for i := int64(0); i < n; i++ {
		input := s.Input(i)
		bout := buggy.Run(input)
		if bout.Crashed {
			continue
		}
		rout := ref.Run(input)
		if rout.Crashed {
			t.Fatalf("reference crashed on input %d", i)
		}
		if strings.Join(bout.Output, "\n") != strings.Join(rout.Output, "\n") {
			mismatches++
			if bout.ObservedBug(9) {
				bug9Mismatches++
			}
		}
	}
	if mismatches == 0 {
		t.Fatal("oracle found no output mismatches; bug #9 undetectable")
	}
	if bug9Mismatches == 0 {
		t.Error("no mismatch co-occurred with bug #9 ground truth")
	}
	t.Logf("moss oracle: %d mismatches in %d clean runs (%d with bug #9)", mismatches, n, bug9Mismatches)
}

// TestMossBug7Harmless: bug #7 occurs but never causes a failure by
// itself — every failing run with bug #7 also shows another bug.
func TestMossBug7Harmless(t *testing.T) {
	s := Moss()
	buggy := interp.New(s.Program(true), nil)
	ref := interp.New(s.Program(false), nil)
	const n = 2000
	occurrences := 0
	for i := int64(0); i < n; i++ {
		input := s.Input(i)
		out := buggy.Run(input)
		if out.ObservedBug(7) {
			occurrences++
		}
		failed := out.Crashed
		if !failed {
			rout := ref.Run(input)
			failed = strings.Join(out.Output, "\n") != strings.Join(rout.Output, "\n")
		}
		if failed && out.ObservedBug(7) && len(out.BugsObserved) == 1 {
			t.Errorf("input %d failed with only bug #7 observed (trap %s)", i, out.Trap)
		}
	}
	if occurrences == 0 {
		t.Error("bug #7 never occurred")
	}
}

// TestBugKindBehaviours spot-checks the paper-relevant bug semantics.
func TestBugKindBehaviours(t *testing.T) {
	t.Run("bc crash far from cause", func(t *testing.T) {
		s := Bc()
		in := interp.New(s.Program(true), nil)
		sawDelayed := false
		for i := int64(0); i < 3000 && !sawDelayed; i++ {
			out := in.Run(s.Input(i))
			if out.Crashed && out.ObservedBug(1) {
				// A delayed crash surfaces in the evaluation loop
				// (main), not inside grow_vars.
				if len(out.Stack) > 0 && out.Stack[0].Func == "main" {
					sawDelayed = true
				}
			}
		}
		if !sawDelayed {
			t.Error("bc overrun never produced a delayed crash outside grow_vars")
		}
	})

	t.Run("exif deep stack for bug3", func(t *testing.T) {
		s := Exif()
		in := interp.New(s.Program(true), nil)
		found := false
		for i := int64(0); i < 20000 && !found; i++ {
			out := in.Run(s.Input(i))
			if out.Crashed && out.ObservedBug(3) {
				sig := out.StackSignature()
				if strings.Contains(sig, "memcpy_sim") && strings.Contains(sig, "mnote_save") {
					found = true
				}
			}
		}
		if !found {
			t.Error("exif bug #3 never crashed through the save path")
		}
	})

	t.Run("rhythmbox race needs destroy-then-timer", func(t *testing.T) {
		s := Rhythmbox()
		in := interp.New(s.Program(true), nil)
		crashed := 0
		for i := int64(0); i < 1000; i++ {
			out := in.Run(s.Input(i))
			if out.Crashed && out.ObservedBug(1) {
				crashed++
			}
		}
		if crashed == 0 {
			t.Error("rhythmbox race never crashed")
		}
	})

	t.Run("ccrypt deterministic validation bug", func(t *testing.T) {
		s := Ccrypt()
		in := interp.New(s.Program(true), nil)
		var crashes, occurrences int
		for i := int64(0); i < 1000; i++ {
			out := in.Run(s.Input(i))
			if out.ObservedBug(1) {
				occurrences++
				if out.Crashed {
					crashes++
				}
			}
		}
		if occurrences == 0 {
			t.Fatal("ccrypt bug never occurred")
		}
		if crashes != occurrences {
			t.Errorf("ccrypt bug is deterministic in the paper: %d occurrences, %d crashes", occurrences, crashes)
		}
	})
}

func TestByName(t *testing.T) {
	for _, name := range []string{"moss", "ccrypt", "bc", "exif", "rhythmbox"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}
