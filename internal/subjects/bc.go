package subjects

import "cbi/internal/interp"

// Bc returns the BC analog: a stack calculator with GNU bc 1.06's known
// heap buffer overrun (paper §4.2.2): defining more than 32 variables
// overruns the variable tables. The overrun smashes adjacent
// allocations, and the crash occurs much later, during evaluation, with
// no useful information on the stack — exactly the paper's scenario.
func Bc() *Subject {
	return &Subject{
		Name:        "bc",
		Description: "stack calculator (BC analog)",
		Bugs: []Bug{
			{ID: 1, Kind: KindBufferOverrun, Description: "variable table overrun past 32 entries; crash far from cause"},
		},
		template: bcTemplate,
		snippets: map[string]snippet{
			"bug1_check": {
				buggy: `if (id >= 32) { observe_bug(1); }`,
				fixed: `if (id >= 32) { return; }`,
			},
		},
		genInput: bcGen,
	}
}

const bcTemplate = `
// BC analog: opcode-driven stack calculator.
// Opcodes: 1 push-const, 2 store-var, 3 load-var, 4 add, 5 sub,
// 6 mul, 7 div, 8 print.
int v_count = 0;
int old_count = 0;

string* a_names;
int* v_vals;
int* stack;
int sp = 0;

// grow_vars extends the variable tables to cover id. Capacity is 32.
void grow_vars(int id) {
  if (id < v_count) { return; }
  old_count = v_count;
  @{bug1_check}
  for (int i = v_count; i <= id; i = i + 1) {
    a_names[i] = "v" + itoa(i);
    v_vals[i] = 0;
  }
  v_count = id + 1;
}

void store_var(int id, int val) {
  grow_vars(id);
  if (id < v_count) {
    v_vals[id] = val;
  }
}

int load_var(int id) {
  if (id >= v_count) { return 0; }
  return v_vals[id];
}

void push(int v) {
  if (sp >= 64) { return; }
  stack[sp] = v;
  sp = sp + 1;
}

int pop() {
  if (sp <= 0) { return 0; }
  sp = sp - 1;
  return stack[sp];
}

int main() {
  a_names = new string[32];
  v_vals = new int[32];
  stack = new int[64];
  int steps = 0;
  int op = read();
  while (op >= 0 && steps < 5000) {
    steps = steps + 1;
    if (op == 1) {
      push(read());
    } else if (op == 2) {
      int id = read();
      if (id >= 0) {
        store_var(id, pop());
      }
    } else if (op == 3) {
      int id = read();
      if (id >= 0) {
        push(load_var(id));
      }
    } else if (op == 4) {
      push(pop() + pop());
    } else if (op == 5) {
      int b = pop();
      int a = pop();
      push(a - b);
    } else if (op == 6) {
      push(pop() * pop());
    } else if (op == 7) {
      int b = pop();
      int a = pop();
      if (b == 0) {
        push(0);
      } else {
        push(a / b);
      }
    } else if (op == 8) {
      output(pop());
    }
    op = read();
  }
  output("vars ", v_count, " depth ", sp);
  return 0;
}
`

func bcGen(idx int64) interp.Input {
	r := newGenRNG("bc", idx)
	// 15% of runs use "wide" programs with variable ids up to 40,
	// which is what triggers the table overrun.
	maxID := int64(20)
	if r.chance(0.15) {
		maxID = 41
	}
	n := 20 + r.intn(180)
	var stream []int64
	for i := int64(0); i < n; i++ {
		op := 1 + r.intn(8)
		stream = append(stream, op)
		switch op {
		case 1:
			stream = append(stream, r.intn(1000))
		case 2, 3:
			stream = append(stream, r.intn(maxID))
		}
	}
	return interp.Input{Stream: stream, Seed: idx}
}
