package logreg

import "cbi/internal/core"

// engine adapts the ℓ1 logistic-regression baseline to the pluggable
// scoring-engine interface: train on the run log, rank predicates by
// their positive failure-predicting coefficients (the Table 9 list).
// Training is deterministic for a given report sequence (fixed zero
// initialisation, fixed iteration count), but the gradient is a
// floating-point sum over runs, so unlike the counting engines a
// permuted run log can move coefficients in the last few bits. Exact
// merged-vs-single equivalence is guaranteed only for the default
// engine.
type engine struct{}

func (engine) Name() string { return "logreg" }
func (engine) Doc() string {
	return "l1-regularized logistic regression coefficients (the paper's Table 9 baseline)"
}

func (engine) Score(in core.Input, k int) []core.EnginePredictor {
	model := Train(in.Set, DefaultOptions)
	agg := core.Aggregate(in)
	coefs := model.TopCoefficients(k)
	out := make([]core.EnginePredictor, len(coefs))
	for i, c := range coefs {
		out[i] = core.EnginePredictor{Pred: c.Pred, Score: c.Weight, Stats: agg.Stats[c.Pred]}
	}
	return out
}

func init() { core.RegisterEngine(engine{}) }
