package logreg

import (
	"sort"

	"cbi/internal/core"
	"cbi/internal/report"
)

// engine adapts the ℓ1 logistic-regression baseline to the pluggable
// scoring-engine interface: train on the run log, rank predicates by
// their positive failure-predicting coefficients (the Table 9 list).
// Training is deterministic for a given report *multiset*: before
// training, Score sorts a copy of the reports into a canonical content
// order (outcome, then site vector, then predicate vector), so the
// floating-point gradient sums run in the same order whether the runs
// arrived one at a time, in batches, or as a merged shard union. A
// gateway merging N shards and a single collector over the same corpus
// therefore serve byte-identical ?engine=logreg bodies, matching the
// counting engines' equivalence guarantee.
type engine struct{}

func (engine) Name() string { return "logreg" }
func (engine) Doc() string {
	return "l1-regularized logistic regression coefficients (the paper's Table 9 baseline)"
}

func (engine) Score(in core.Input, k int) []core.EnginePredictor {
	model := Train(canonicalSet(in.Set), DefaultOptions)
	agg := core.Aggregate(in)
	coefs := model.TopCoefficients(k)
	out := make([]core.EnginePredictor, len(coefs))
	for i, c := range coefs {
		out[i] = core.EnginePredictor{Pred: c.Pred, Score: c.Weight, Stats: agg.Stats[c.Pred]}
	}
	return out
}

// canonicalSet returns a shallow copy of the set whose reports are
// sorted by content — failures after successes, then lexicographically
// by observed-site vector, then by true-predicate vector. Reports with
// identical content compare equal; their relative order is irrelevant
// because equal feature vectors contribute equal gradient terms. The
// caller's set is never mutated.
func canonicalSet(s *report.Set) *report.Set {
	if s == nil || len(s.Reports) < 2 {
		return s
	}
	sorted := &report.Set{NumSites: s.NumSites, NumPreds: s.NumPreds}
	sorted.Reports = make([]*report.Report, len(s.Reports))
	copy(sorted.Reports, s.Reports)
	sort.Slice(sorted.Reports, func(i, j int) bool {
		return canonicalLess(sorted.Reports[i], sorted.Reports[j])
	})
	return sorted
}

func canonicalLess(a, b *report.Report) bool {
	if a.Failed != b.Failed {
		return !a.Failed
	}
	if c := compareIDs(a.ObservedSites, b.ObservedSites); c != 0 {
		return c < 0
	}
	return compareIDs(a.TruePreds, b.TruePreds) < 0
}

func compareIDs(a, b []int32) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func init() { core.RegisterEngine(engine{}) }
