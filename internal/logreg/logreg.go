// Package logreg implements the ℓ1-regularized logistic regression
// baseline the paper compares against (§4.4, citing the authors' own
// earlier PLDI'03/NIPS'04 work). The classifier predicts run failure
// from the predicate bit vector R(P); the ℓ1 penalty drives most
// coefficients to zero so the top-weighted predicates form a ranked
// predictor list (Table 9).
//
// Training uses proximal gradient descent (ISTA) with the soft-
// thresholding operator, which handles the non-smooth ℓ1 term exactly
// and works well on sparse 0/1 features.
package logreg

import (
	"math"
	"sort"

	"cbi/internal/report"
)

// Options configure training.
type Options struct {
	// Lambda is the ℓ1 regularization strength (per-example scale).
	Lambda float64
	// Iters is the number of proximal gradient iterations.
	Iters int
	// Step is the gradient step size.
	Step float64
}

// DefaultOptions mirror the magnitude used in the paper's experiments:
// strong enough regularization that only tens of predicates survive.
var DefaultOptions = Options{Lambda: 0.005, Iters: 300, Step: 0.5}

// Model is a trained classifier.
type Model struct {
	// W holds one weight per predicate.
	W []float64
	// B is the intercept.
	B float64
}

// Coef is a nonzero coefficient, for ranked reporting.
type Coef struct {
	Pred   int
	Weight float64
}

// Train fits a model on the report set.
func Train(set *report.Set, opts Options) *Model {
	if opts.Iters <= 0 {
		opts.Iters = DefaultOptions.Iters
	}
	if opts.Step <= 0 {
		opts.Step = DefaultOptions.Step
	}
	n := len(set.Reports)
	if n == 0 {
		return &Model{W: make([]float64, set.NumPreds)}
	}
	d := set.NumPreds
	w := make([]float64, d)
	b := 0.0
	grad := make([]float64, d)
	invN := 1.0 / float64(n)

	for iter := 0; iter < opts.Iters; iter++ {
		for i := range grad {
			grad[i] = 0
		}
		gradB := 0.0
		for _, r := range set.Reports {
			// margin = w·x + b over the sparse true-predicate list.
			margin := b
			for _, p := range r.TruePreds {
				margin += w[p]
			}
			pred := sigmoid(margin)
			y := 0.0
			if r.Failed {
				y = 1
			}
			diff := (pred - y) * invN
			gradB += diff
			for _, p := range r.TruePreds {
				grad[p] += diff
			}
		}
		b -= opts.Step * gradB
		for j := 0; j < d; j++ {
			w[j] = softThreshold(w[j]-opts.Step*grad[j], opts.Step*opts.Lambda)
		}
	}
	return &Model{W: w, B: b}
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}

// Predict returns the estimated failure probability for one report.
func (m *Model) Predict(r *report.Report) float64 {
	margin := m.B
	for _, p := range r.TruePreds {
		margin += m.W[p]
	}
	return sigmoid(margin)
}

// Accuracy returns the 0.5-threshold classification accuracy on a set.
func (m *Model) Accuracy(set *report.Set) float64 {
	if len(set.Reports) == 0 {
		return 0
	}
	right := 0
	for _, r := range set.Reports {
		if (m.Predict(r) >= 0.5) == r.Failed {
			right++
		}
	}
	return float64(right) / float64(len(set.Reports))
}

// NumNonzero counts predicates with nonzero weight.
func (m *Model) NumNonzero() int {
	n := 0
	for _, w := range m.W {
		if w != 0 {
			n++
		}
	}
	return n
}

// TopCoefficients returns the k largest positive coefficients in
// decreasing order — the paper's Table 9 list (positive weights predict
// failure).
func (m *Model) TopCoefficients(k int) []Coef {
	var out []Coef
	for p, w := range m.W {
		if w > 0 {
			out = append(out, Coef{Pred: p, Weight: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Pred < out[j].Pred
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
