package logreg

import (
	"math"
	"testing"

	"cbi/internal/report"
)

// worldSet builds a corpus where pred 0 perfectly predicts failure,
// pred 1 is noise, and pred 2 is anti-correlated with failure.
func worldSet() *report.Set {
	set := &report.Set{NumSites: 3, NumPreds: 3}
	for i := 0; i < 200; i++ {
		failed := i%4 == 0
		var preds []int32
		if failed {
			preds = append(preds, 0)
		} else {
			preds = append(preds, 2)
		}
		if i%2 == 0 {
			preds = append(preds, 1)
		}
		if len(preds) > 1 && preds[0] > preds[1] {
			preds[0], preds[1] = preds[1], preds[0]
		}
		set.Reports = append(set.Reports, &report.Report{Failed: failed, TruePreds: preds})
	}
	return set
}

func TestTrainSeparableData(t *testing.T) {
	set := worldSet()
	m := Train(set, Options{Lambda: 0.001, Iters: 500, Step: 1.0})
	if m.W[0] <= 0 {
		t.Errorf("w[0] = %v, want > 0 (perfect failure predictor)", m.W[0])
	}
	if m.W[2] >= 0 {
		t.Errorf("w[2] = %v, want < 0 (anti-correlated)", m.W[2])
	}
	if acc := m.Accuracy(set); acc < 0.95 {
		t.Errorf("accuracy = %v on separable data", acc)
	}
}

func TestL1DrivesNoiseToZero(t *testing.T) {
	set := worldSet()
	m := Train(set, Options{Lambda: 0.02, Iters: 500, Step: 1.0})
	if m.W[1] != 0 {
		t.Errorf("noise coefficient w[1] = %v, want exactly 0 under l1", m.W[1])
	}
	if m.W[0] == 0 {
		t.Error("signal coefficient was zeroed out")
	}
}

func TestStrongerLambdaSparser(t *testing.T) {
	set := worldSet()
	weak := Train(set, Options{Lambda: 0.0001, Iters: 300, Step: 1.0})
	strong := Train(set, Options{Lambda: 0.05, Iters: 300, Step: 1.0})
	if strong.NumNonzero() > weak.NumNonzero() {
		t.Errorf("stronger lambda gave more nonzeros: %d > %d", strong.NumNonzero(), weak.NumNonzero())
	}
}

func TestTopCoefficients(t *testing.T) {
	m := &Model{W: []float64{0.5, 0, -0.3, 1.5, 0.1}}
	top := m.TopCoefficients(2)
	if len(top) != 2 || top[0].Pred != 3 || top[1].Pred != 0 {
		t.Errorf("top = %+v", top)
	}
	all := m.TopCoefficients(0)
	if len(all) != 3 {
		t.Errorf("all positive coefficients = %+v", all)
	}
}

func TestPredictRange(t *testing.T) {
	set := worldSet()
	m := Train(set, Options{Lambda: 0.005, Iters: 200, Step: 0.5})
	for _, r := range set.Reports {
		p := m.Predict(r)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("Predict = %v out of [0,1]", p)
		}
	}
}

func TestEmptySet(t *testing.T) {
	m := Train(&report.Set{NumPreds: 5}, Options{})
	if m.NumNonzero() != 0 {
		t.Error("empty training set produced nonzero weights")
	}
	if acc := m.Accuracy(&report.Set{}); acc != 0 {
		t.Errorf("accuracy on empty set = %v", acc)
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ x, t, want float64 }{
		{2, 0.5, 1.5},
		{-2, 0.5, -1.5},
		{0.3, 0.5, 0},
		{-0.3, 0.5, 0},
		{0.5, 0.5, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.x, c.t); got != c.want {
			t.Errorf("softThreshold(%v, %v) = %v, want %v", c.x, c.t, got, c.want)
		}
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0) = %v", s)
	}
}
