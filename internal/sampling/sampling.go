// Package sampling implements the sparse random sampling strategies used
// by the Cooperative Bug Isolation instrumentation.
//
// The paper (§2) requires statistically fair sampling "equivalent to a
// Bernoulli process": each opportunity to observe an instrumentation
// site is taken or skipped randomly and independently. Simulating a coin
// flip per opportunity is slow, so — like the real CBI system — samplers
// here draw geometrically distributed countdowns: the number of skipped
// opportunities between samples of a Bernoulli(p) process is geometric,
// so counting down and sampling when the counter hits zero is exactly
// equivalent to independent coin flips. Property tests in this package
// verify the equivalence empirically.
//
// Two rate policies are provided:
//
//   - Uniform: a single rate (the paper's default 1/100) shared by all
//     sites, with one global countdown.
//   - Nonuniform: per-site rates (paper §4), set inversely proportional
//     to each site's expected execution frequency so every site expects
//     ~TargetSamples observations per run, clamped to [MinRate, 1].
package sampling

import "math"

// Sampler decides, opportunity by opportunity, whether instrumentation
// sites are observed.
type Sampler interface {
	// Sample reports whether the current reach of the given site should
	// be observed. Sites are identified by dense indices.
	Sample(site int) bool
	// Reset re-seeds the sampler for a new run. Runs with equal seeds
	// make identical decisions.
	Reset(seed int64)
}

// Always samples every opportunity (the paper's "no sampling at all"
// validation configuration).
type Always struct{}

// Sample always returns true.
func (Always) Sample(int) bool { return true }

// Reset is a no-op.
func (Always) Reset(int64) {}

// Never samples nothing; useful to measure instrumentation overhead.
type Never struct{}

// Sample always returns false.
func (Never) Sample(int) bool { return false }

// Reset is a no-op.
func (Never) Reset(int64) {}

// Uniform samples every site at the same rate using one global
// geometric countdown over all observation opportunities.
type Uniform struct {
	rate      float64
	rng       splitmix
	countdown int64
}

// NewUniform returns a sampler with the given rate in (0, 1].
func NewUniform(rate float64) *Uniform {
	if rate <= 0 || rate > 1 {
		panic("sampling: rate must be in (0, 1]")
	}
	u := &Uniform{rate: rate}
	u.Reset(1)
	return u
}

// Rate returns the sampling rate.
func (u *Uniform) Rate() float64 { return u.rate }

// Reset re-seeds the countdown stream.
func (u *Uniform) Reset(seed int64) {
	u.rng = splitmix{state: uint64(seed) ^ 0xa0761d6478bd642f}
	u.countdown = nextGeometric(&u.rng, u.rate)
}

// Sample implements Sampler.
func (u *Uniform) Sample(int) bool {
	u.countdown--
	if u.countdown > 0 {
		return false
	}
	u.countdown = nextGeometric(&u.rng, u.rate)
	return true
}

// Nonuniform samples each site at its own rate with per-site countdowns.
type Nonuniform struct {
	rates      []float64
	rng        splitmix
	countdowns []int64
}

// NewNonuniform returns a sampler with the given per-site rates. Each
// rate must be in (0, 1].
func NewNonuniform(rates []float64) *Nonuniform {
	for i, r := range rates {
		if r <= 0 || r > 1 {
			panic("sampling: site rate out of range at " + itoa(i))
		}
	}
	n := &Nonuniform{rates: rates, countdowns: make([]int64, len(rates))}
	n.Reset(1)
	return n
}

// Rates returns the per-site rates (shared slice; do not modify).
func (n *Nonuniform) Rates() []float64 { return n.rates }

// SetRates replaces the per-site rates (copying the slice) and re-draws
// every countdown from the sampler's current PRNG state so the new
// rates take effect immediately; a subsequent Reset re-derives the
// countdowns deterministically from the new rates as usual. The rate
// vector's length must match and each rate must be in (0, 1].
func (n *Nonuniform) SetRates(rates []float64) {
	if len(rates) != len(n.rates) {
		panic("sampling: SetRates length mismatch: " + itoa(len(rates)) + " != " + itoa(len(n.rates)))
	}
	for i, r := range rates {
		if r <= 0 || r > 1 {
			panic("sampling: site rate out of range at " + itoa(i))
		}
	}
	n.rates = append([]float64(nil), rates...)
	for i, r := range n.rates {
		n.countdowns[i] = nextGeometric(&n.rng, r)
	}
}

// Reset re-seeds all countdowns.
func (n *Nonuniform) Reset(seed int64) {
	n.rng = splitmix{state: uint64(seed) ^ 0xe7037ed1a0b428db}
	for i, r := range n.rates {
		n.countdowns[i] = nextGeometric(&n.rng, r)
	}
}

// Sample implements Sampler.
func (n *Nonuniform) Sample(site int) bool {
	n.countdowns[site]--
	if n.countdowns[site] > 0 {
		return false
	}
	n.countdowns[site] = nextGeometric(&n.rng, n.rates[site])
	return true
}

// PlanRates converts per-site expected reach counts (from a training
// set, paper §4: "Based on a training set of 1,000 executions") into
// per-site sampling rates targeting ~target samples per run:
//
//	rate = clamp(target / expectedReaches, minRate, 1)
//
// Sites never reached in training get rate 1 (they are rare by
// definition; the paper sets the rate to 1.0 when a site is expected to
// be reached fewer than target times).
func PlanRates(expectedReaches []float64, target float64, minRate float64) []float64 {
	rates := make([]float64, len(expectedReaches))
	for i, e := range expectedReaches {
		switch {
		case e <= target:
			rates[i] = 1
		default:
			r := target / e
			if r < minRate {
				r = minRate
			}
			rates[i] = r
		}
	}
	return rates
}

// SaturationFraction is the observed-run fraction above which a site's
// reach count is treated as unidentifiable from run-level membership
// counts: once nearly every retained run observes a site, the
// observation probability 1-(1-rate)^reaches carries no usable gradient
// (it is ~1 whether the site is reached 300 or 300,000 times per run).
const SaturationFraction = 0.95

// EstimateReaches inverts live aggregate observation counts into
// per-site expected reach counts, the input sampling.PlanRates wants.
//
// Under sampling at rate r, a run reaching a site k times observes it
// with probability f = 1-(1-r)^k, so from the observed-run fraction f
// the reach count is est = log(1-f)/log(1-r). At rate 1 observation
// equals reach, and for sites reached at most a handful of times per
// run (the only ones identifiable at rate 1) the observed fraction is
// ~1-e^-k, inverted as est = -log(1-f).
//
// identified[i] reports whether est[i] is trustworthy: false when the
// site is saturated (f >= SaturationFraction), where est is only a
// lower bound and callers should hold the site's current rate rather
// than plan from it. The observed fraction is capped below 1 at
// 1 - 1/(2*runs) so a site observed in every run still inverts to a
// finite bound.
//
// Panics if the slice lengths differ or a rate is outside (0, 1],
// matching this package's other input contracts.
func EstimateReaches(observed []int64, runs int64, rates []float64) (est []float64, identified []bool) {
	if len(observed) != len(rates) {
		panic("sampling: EstimateReaches length mismatch: " + itoa(len(observed)) + " != " + itoa(len(rates)))
	}
	est = make([]float64, len(rates))
	identified = make([]bool, len(rates))
	if runs <= 0 {
		return est, identified
	}
	fCap := 1 - 1/(2*float64(runs))
	for i, r := range rates {
		if r <= 0 || r > 1 {
			panic("sampling: site rate out of range at " + itoa(i))
		}
		f := float64(observed[i]) / float64(runs)
		if f <= 0 {
			identified[i] = true
			continue
		}
		sat := f >= SaturationFraction
		if f > fCap {
			f = fCap
		}
		if r >= 1 {
			est[i] = -math.Log(1 - f)
		} else {
			est[i] = math.Log(1-f) / math.Log(1-r)
		}
		identified[i] = !sat
	}
	return est, identified
}

// DefaultRate is the paper's default uniform sampling rate.
const DefaultRate = 1.0 / 100

// DefaultTargetSamples is the expected per-run sample count targeted by
// nonuniform rate planning (paper §4).
const DefaultTargetSamples = 100.0

// splitmix is a tiny deterministic PRNG (splitmix64).
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitmix) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// nextGeometric draws the 1-based index of the next success in a
// Bernoulli(p) process: Geometric(p) on {1, 2, ...}.
func nextGeometric(rng *splitmix, p float64) int64 {
	if p >= 1 {
		return 1
	}
	u := rng.float64()
	for u == 0 {
		u = rng.float64()
	}
	g := int64(math.Floor(math.Log(u)/math.Log(1-p))) + 1
	if g < 1 {
		g = 1
	}
	return g
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [24]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
