package sampling

import (
	"math"
	"testing"
)

// TestEstimateReachesInversion: EstimateReaches is the exact inverse of
// the observation model f = 1-(1-r)^k, so feeding it noiseless observed
// fractions recovers the true reach counts.
func TestEstimateReachesInversion(t *testing.T) {
	const runs = 100_000
	reaches := []float64{1, 10, 100, 250}
	rates := []float64{0.01, 0.01, 0.01, 0.01}
	observed := make([]int64, len(reaches))
	for i, k := range reaches {
		f := 1 - math.Pow(1-rates[i], k)
		observed[i] = int64(math.Round(f * runs))
	}
	est, identified := EstimateReaches(observed, runs, rates)
	for i, k := range reaches {
		if !identified[i] {
			t.Fatalf("site %d (k=%v, f=%.3f) marked unidentified", i, k, float64(observed[i])/runs)
		}
		if rel := math.Abs(est[i]-k) / k; rel > 0.01 {
			t.Fatalf("site %d: est %v for true reach %v", i, est[i], k)
		}
	}
}

func TestEstimateReachesSaturation(t *testing.T) {
	const runs = 1000
	// 97% observed at 1%: above SaturationFraction — est is a lower
	// bound only, and the site must be flagged unidentified.
	est, identified := EstimateReaches([]int64{970, runs}, runs, []float64{0.01, 0.01})
	for i := range est {
		if identified[i] {
			t.Fatalf("saturated site %d marked identified", i)
		}
		if math.IsInf(est[i], 0) || math.IsNaN(est[i]) {
			t.Fatalf("saturated site %d: est = %v, want finite", i, est[i])
		}
	}
	// Fully observed still inverts finitely via the 1-1/(2*runs) cap.
	if est[1] <= est[0] {
		t.Fatalf("fully observed est %v not above partially saturated est %v", est[1], est[0])
	}
}

func TestEstimateReachesRateOne(t *testing.T) {
	const runs = 100_000
	// At rate 1 observation = reach: f = 1-e^-k for Poisson-ish arrivals
	// is the documented inversion; k=2 gives f ≈ 0.865.
	f := 1 - math.Exp(-2)
	est, identified := EstimateReaches([]int64{int64(f * runs)}, runs, []float64{1})
	if !identified[0] {
		t.Fatal("moderate site at rate 1 marked unidentified")
	}
	if math.Abs(est[0]-2) > 0.05 {
		t.Fatalf("rate-1 inversion: est %v, want ~2", est[0])
	}
}

func TestEstimateReachesEdges(t *testing.T) {
	// No runs: nothing identified, nothing estimated.
	est, identified := EstimateReaches([]int64{5}, 0, []float64{0.5})
	if est[0] != 0 || identified[0] {
		t.Fatalf("runs=0: est %v identified %v", est[0], identified[0])
	}
	// Never observed: zero estimate, identified (PlanRates raises it).
	est, identified = EstimateReaches([]int64{0}, 100, []float64{0.5})
	if est[0] != 0 || !identified[0] {
		t.Fatalf("f=0: est %v identified %v", est[0], identified[0])
	}
}

func TestEstimateReachesPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("length mismatch", func() {
		EstimateReaches([]int64{1}, 10, []float64{0.5, 0.5})
	})
	assertPanics("rate zero", func() {
		EstimateReaches([]int64{1}, 10, []float64{0})
	})
}

// TestSetRates: new rates take effect immediately and Reset stays
// deterministic under the new rates.
func TestSetRates(t *testing.T) {
	n := NewNonuniform([]float64{0.001, 1})
	n.SetRates([]float64{1, 0.001})
	// Site 0 now samples every time; site 1 almost never.
	for i := 0; i < 100; i++ {
		if !n.Sample(0) {
			t.Fatal("site 0 at rate 1 skipped a sample after SetRates")
		}
	}
	hits := 0
	for i := 0; i < 100; i++ {
		if n.Sample(1) {
			hits++
		}
	}
	if hits > 2 {
		t.Fatalf("site 1 at rate 0.001 sampled %d of 100 after SetRates", hits)
	}

	// Reset determinism is preserved across SetRates.
	m := NewNonuniform([]float64{0.3, 0.7})
	m.SetRates([]float64{0.7, 0.3})
	m.Reset(42)
	var a []bool
	for i := 0; i < 200; i++ {
		a = append(a, m.Sample(i%2))
	}
	m.Reset(42)
	for i := 0; i < 200; i++ {
		if m.Sample(i%2) != a[i] {
			t.Fatalf("Reset after SetRates not deterministic at step %d", i)
		}
	}

	// The copied slice means later caller mutation cannot corrupt the
	// sampler.
	rates := []float64{0.5, 0.5}
	m.SetRates(rates)
	rates[0] = 123
	if m.Rates()[0] != 0.5 {
		t.Fatal("SetRates aliased the caller's slice")
	}

	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("length mismatch", func() { m.SetRates([]float64{1}) })
	assertPanics("rate out of range", func() { m.SetRates([]float64{0.5, 1.5}) })
}
