package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlwaysAndNever(t *testing.T) {
	var a Always
	var n Never
	for i := 0; i < 100; i++ {
		if !a.Sample(i) {
			t.Fatal("Always returned false")
		}
		if n.Sample(i) {
			t.Fatal("Never returned true")
		}
	}
}

func TestUniformRateValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewUniform(%v) did not panic", bad)
				}
			}()
			NewUniform(bad)
		}()
	}
	NewUniform(1) // rate 1 is legal (always sample)
}

func TestUniformRateOne(t *testing.T) {
	u := NewUniform(1)
	for i := 0; i < 1000; i++ {
		if !u.Sample(0) {
			t.Fatal("rate-1 sampler skipped an opportunity")
		}
	}
}

// TestUniformMatchesBernoulliRate checks the countdown implementation
// empirically: the long-run sample fraction must match the configured
// rate (geometric inter-arrival <=> i.i.d. Bernoulli).
func TestUniformMatchesBernoulliRate(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		u := NewUniform(rate)
		u.Reset(12345)
		const n = 500_000
		hits := 0
		for i := 0; i < n; i++ {
			if u.Sample(0) {
				hits++
			}
		}
		got := float64(hits) / n
		// 6-sigma band for a binomial proportion.
		tol := 6 * math.Sqrt(rate*(1-rate)/n)
		if math.Abs(got-rate) > tol {
			t.Errorf("rate %v: observed %v (tolerance %v)", rate, got, tol)
		}
	}
}

// TestUniformInterArrivalGeometric verifies the memoryless shape: the
// variance of inter-arrival gaps must match geometric variance
// (1-p)/p^2, which a deterministic "every 1/p-th" sampler would fail.
func TestUniformInterArrivalGeometric(t *testing.T) {
	const rate = 0.05
	u := NewUniform(rate)
	u.Reset(99)
	var gaps []float64
	gap := 0
	for len(gaps) < 20000 {
		gap++
		if u.Sample(0) {
			gaps = append(gaps, float64(gap))
			gap = 0
		}
	}
	var sum, sumSq float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	for _, g := range gaps {
		sumSq += (g - mean) * (g - mean)
	}
	variance := sumSq / float64(len(gaps)-1)
	wantMean := 1 / rate
	wantVar := (1 - rate) / (rate * rate)
	if math.Abs(mean-wantMean)/wantMean > 0.05 {
		t.Errorf("mean gap %v, want ~%v", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.15 {
		t.Errorf("gap variance %v, want ~%v (geometric)", variance, wantVar)
	}
}

func TestResetDeterminism(t *testing.T) {
	u := NewUniform(0.1)
	record := func(seed int64) []bool {
		u.Reset(seed)
		out := make([]bool, 1000)
		for i := range out {
			out[i] = u.Sample(0)
		}
		return out
	}
	a, b, c := record(7), record(7), record(8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical decision streams")
	}
}

func TestNonuniformPerSiteRates(t *testing.T) {
	rates := []float64{1.0, 0.5, 0.01}
	s := NewNonuniform(rates)
	s.Reset(42)
	const n = 200_000
	hits := make([]int, len(rates))
	for i := 0; i < n; i++ {
		for site := range rates {
			if s.Sample(site) {
				hits[site]++
			}
		}
	}
	for site, rate := range rates {
		got := float64(hits[site]) / n
		tol := 6*math.Sqrt(rate*(1-rate)/n) + 1e-9
		if math.Abs(got-rate) > tol {
			t.Errorf("site %d: observed %v, want %v ± %v", site, got, rate, tol)
		}
	}
}

func TestNonuniformValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewNonuniform with rate 0 did not panic")
		}
	}()
	NewNonuniform([]float64{0.5, 0})
}

func TestPlanRates(t *testing.T) {
	rates := PlanRates([]float64{0, 50, 100, 1000, 1_000_000}, 100, 0.01)
	want := []float64{1, 1, 1, 0.1, 0.01}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-12 {
			t.Errorf("rate[%d] = %v, want %v", i, rates[i], want[i])
		}
	}
}

// Property: planned rates are always in [minRate, 1] and monotonically
// non-increasing in expected reach count.
func TestPlanRatesProperties(t *testing.T) {
	f := func(reaches []float64) bool {
		for i, r := range reaches {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				reaches[i] = 0
			}
		}
		rates := PlanRates(reaches, 100, 0.01)
		for _, r := range rates {
			if r < 0.01-1e-15 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricNeverReturnsBelowOne(t *testing.T) {
	rng := &splitmix{state: 1}
	for _, p := range []float64{0.999999, 0.5, 0.0001} {
		for i := 0; i < 10000; i++ {
			if g := nextGeometric(rng, p); g < 1 {
				t.Fatalf("geometric draw %d < 1 for p=%v", g, p)
			}
		}
	}
}
