// Quickstart: instrument a 40-line buggy MiniC program, run it a few
// thousand times under sparse sampling, and isolate the bug predictor.
//
// The program has a planted bug: when the input configuration selects
// the "fast path" (cfg > 12) AND the payload is empty, a null pointer
// is dereferenced. Statistical debugging surfaces predicates describing
// those circumstances without being told anything about the bug.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cbi/internal/core"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/lang"
	"cbi/internal/report"
	"cbi/internal/sampling"
	"cbi/internal/thermo"
)

const src = `
struct Buf {
  int size;
  int* data;
}

Buf* make_buf(int n) {
  Buf* b = new Buf;
  b->size = n;
  if (n > 0) {
    b->data = new int[n];
  }
  return b;
}

int checksum(Buf* b, int fast) {
  int sum = 0;
  if (fast > 12) {
    // Fast path: forgets that empty buffers have no data block.
    sum = b->data[0];
  }
  for (int i = 0; i < b->size; i = i + 1) {
    sum = sum + b->data[i];
  }
  return sum;
}

int main() {
  int cfg = arg(0);
  int n = arg(1);
  Buf* b = make_buf(n);
  for (int i = 0; i < n; i = i + 1) {
    b->data[i] = read();
  }
  output(checksum(b, cfg));
  return 0;
}
`

func main() {
	// 1. Parse, type-check, and plan instrumentation.
	prog := lang.MustParse("quickstart.mc", src)
	if err := lang.Resolve(prog); err != nil {
		panic(err)
	}
	plan := instrument.BuildPlan(prog)
	fmt.Printf("instrumented %d sites / %d predicates "+
		"(branches, returns, scalar-pairs)\n", plan.NumSites(), plan.NumPreds())

	// 2. Run 4,000 randomized executions at a 1/10 sampling rate.
	rt := instrument.NewRuntime(plan, sampling.NewUniform(0.1))
	vm := interp.New(prog, rt)
	set := &report.Set{NumSites: plan.NumSites(), NumPreds: plan.NumPreds()}
	rng := uint64(12345)
	failures := 0
	for i := 0; i < 4000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		cfg := int64(rng>>33) % 20
		n := int64(rng>>17) % 6 // often 0: the empty-payload trigger
		stream := make([]int64, n)
		for j := range stream {
			stream[j] = int64(j)
		}
		rt.BeginRun(int64(i) + 1)
		out := vm.Run(interp.Input{Args: []int64{cfg, n}, Stream: stream, Seed: int64(i)})
		if out.Crashed {
			failures++
		}
		set.Reports = append(set.Reports, rt.Snapshot(out.Crashed))
	}
	fmt.Printf("4000 runs, %d failures\n", failures)

	// 3. Analyze: prune by Increase, rank by Importance, eliminate
	// redundancy.
	siteOf := make([]int32, plan.NumPreds())
	for i, p := range plan.Preds {
		siteOf[i] = int32(p.Site)
	}
	in := core.Input{Set: set, SiteOf: siteOf}
	agg := core.Aggregate(in)
	kept := core.FilterByIncrease(agg, core.Z95)
	fmt.Printf("Increase test keeps %d of %d predicates\n", len(kept), plan.NumPreds())

	ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: 5})
	fmt.Println("\ntop bug predictors:")
	for i, rk := range ranked {
		site := plan.SiteOf(rk.Pred)
		th := thermo.Compute(rk.Initial, rk.InitialScores, agg.NumF+agg.NumS)
		fmt.Printf("%d. %s  %s (%s:%d)  Importance %.3f\n",
			i+1, th.Text(18), plan.Preds[rk.Pred].Text, site.Func, site.Line,
			rk.EffectiveScores.Importance)
	}
	fmt.Println("\nexpected: the top predictors describe the empty-payload condition")
	fmt.Println("(n < 1, b->size <= 0, `n > 0 is FALSE`) — the circumstances under")
	fmt.Println("which the fast path crashes, found with no knowledge of the bug.")
}
