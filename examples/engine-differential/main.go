// engine-differential demonstrates the two MiniC execution backends —
// the tree-walking interpreter and the optimizing bytecode VM — and the
// differential-testing discipline that keeps them semantically
// identical: same outcomes, same traps, same crash stacks, and the same
// instrumentation events, run by run.
//
// The real CBI system instruments compiled C programs; the VM backend
// is what makes this reproduction's instrumentation-overhead story
// honest (see BenchmarkVMInstrumented).
//
//	go run ./examples/engine-differential [-seeds N]
package main

import (
	"flag"
	"fmt"
	"strings"

	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/progen"
	"cbi/internal/sampling"
	"cbi/internal/subjects"
	"cbi/internal/vm"
)

func main() {
	seeds := flag.Int("seeds", 200, "random programs to fuzz")
	flag.Parse()

	// 1. One subject program, both engines, instrumented, same input.
	subj := subjects.Exif()
	prog := subj.Program(true)
	plan := instrument.BuildPlan(prog)

	rtTree := instrument.NewRuntime(plan, sampling.NewUniform(0.1))
	tree := interp.New(prog, rtTree)

	mod, err := vm.CompileOptimized(prog)
	if err != nil {
		panic(err)
	}
	rtVM := instrument.NewRuntime(plan, sampling.NewUniform(0.1))
	machine := vm.New(mod, rtVM)

	fmt.Printf("exif: %d sites, %d predicates; bytecode module: %d functions\n",
		plan.NumSites(), plan.NumPreds(), len(mod.Funcs))
	fmt.Println("\nmain's first bytecode instructions:")
	for _, line := range strings.SplitN(vm.Disasm(mod.Funcs[mod.Main]), "\n", 9)[:8] {
		fmt.Println("   ", line)
	}

	agree, crashes := 0, 0
	const runs = 500
	for i := int64(0); i < runs; i++ {
		input := subj.Input(i)
		rtTree.BeginRun(i + 1)
		a := tree.Run(input)
		repA := rtTree.Snapshot(a.Crashed)
		rtVM.BeginRun(i + 1)
		b := machine.Run(input)
		repB := rtVM.Snapshot(b.Crashed)

		same := a.Crashed == b.Crashed && a.Trap == b.Trap &&
			a.StackSignature() == b.StackSignature() &&
			len(repA.TruePreds) == len(repB.TruePreds)
		for j := 0; same && j < len(repA.TruePreds); j++ {
			same = repA.TruePreds[j] == repB.TruePreds[j]
		}
		if same {
			agree++
		}
		if a.Crashed {
			crashes++
		}
	}
	fmt.Printf("\nsubject runs: %d/%d identical across engines (%d crashes), "+
		"including every sampled predicate observation\n", agree, runs, crashes)

	// 2. Differential fuzzing with random well-typed programs.
	fuzzAgree, skipped := 0, 0
	limits := interp.Limits{Steps: 2_000_000}
	for seed := int64(0); seed < int64(*seeds); seed++ {
		p := progen.Generate(seed, progen.DefaultConfig)
		t := interp.New(p, nil)
		t.SetLimits(limits)
		m, err := vm.CompileOptimized(p)
		if err != nil {
			panic(err)
		}
		v := vm.New(m, nil)
		v.SetLimits(limits)
		input := progen.Input(seed)
		a, b := t.Run(input), v.Run(input)
		if a.Trap == interp.TrapStepLimit || b.Trap == interp.TrapStepLimit {
			skipped++
			continue
		}
		if a.Crashed == b.Crashed && a.Trap == b.Trap && a.ExitCode == b.ExitCode &&
			strings.Join(a.Output, "\n") == strings.Join(b.Output, "\n") {
			fuzzAgree++
		} else {
			fmt.Printf("DIVERGENCE at seed %d!\n%s\n", seed, progen.Source(seed, progen.DefaultConfig))
			return
		}
	}
	fmt.Printf("fuzz: %d random programs agree across engines (%d step-limited skipped)\n",
		fuzzAgree, skipped)
	fmt.Println("\nthe same discipline runs in CI: see internal/vm and internal/progen tests.")
}
