// adaptive-sampling demonstrates the paper's §4 nonuniform sampling:
// uniform 1/100 sampling starves rarely-executed sites (a predicate
// reached once per run is observed in only ~1% of runs), while
// training per-site rates on 1,000 runs gives every site an expected
// ~100 samples per run. The example compares how often each policy
// observes the ccrypt bug site, and the resulting F(P) counts for the
// top predictor.
//
//	go run ./examples/adaptive-sampling [-runs N]
package main

import (
	"flag"
	"fmt"

	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/subjects"
)

func main() {
	runs := flag.Int("runs", 4000, "number of monitored runs")
	flag.Parse()
	subj := subjects.Ccrypt()

	type outcome struct {
		mode     harness.Mode
		observed int
		topText  string
		topF     int
	}
	var results []outcome
	for _, mode := range []harness.Mode{harness.SampleUniform, harness.SampleNonuniform, harness.SampleAlways} {
		res := harness.Run(harness.Config{Subject: subj, Runs: *runs, Mode: mode, TrainingRuns: 500})
		in := res.CoreInput()
		ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: 1})
		o := outcome{mode: mode}
		// How many runs observed the buggy prompt site at all?
		agg := core.Aggregate(in)
		for p, st := range agg.Stats {
			site := res.Plan.Sites[res.Plan.Preds[p].Site]
			if site.Func == "prompt_overwrite" {
				if st.Fobs+st.Sobs > o.observed {
					o.observed = st.Fobs + st.Sobs
				}
			}
		}
		if len(ranked) > 0 {
			o.topText = res.PredText(ranked[0].Pred)
			o.topF = ranked[0].Initial.F
		}
		results = append(results, o)
	}

	fmt.Printf("ccrypt, %d runs; the buggy prompt executes at most once per run\n\n", *runs)
	for _, o := range results {
		fmt.Printf("%-11s prompt sites observed in %5d runs; top predictor F=%-4d %s\n",
			o.mode, o.observed, o.topF, o.topText)
	}
	fmt.Println("\nuniform 1/100 sampling observes the once-per-run prompt site in ~1%")
	fmt.Println("of runs; nonuniform sampling sets that site's rate to 1.0 and recovers")
	fmt.Println("nearly every observation, matching the always-sample ground truth.")
}
