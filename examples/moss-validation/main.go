// moss-validation reproduces the paper's §4.1 controlled experiment on
// the MOSS analog: nine seeded bugs of known kinds, nonuniform
// sampling, iterative redundancy elimination, and a ground-truth
// cross-tabulation of each selected predictor against the bugs that
// actually occurred in its failing runs (the paper's Table 3).
//
//	go run ./examples/moss-validation [-runs N]
package main

import (
	"flag"
	"fmt"

	"cbi/internal/experiments"
	"cbi/internal/subjects"
)

func main() {
	runs := flag.Int("runs", 6000, "number of monitored runs")
	flag.Parse()

	moss := subjects.Moss()
	fmt.Println("seeded bugs:")
	for _, b := range moss.Bugs {
		fmt.Printf("  #%d %-36s %s\n", b.ID, b.Kind, b.Description)
	}
	fmt.Println()

	r := experiments.NewRunner(experiments.Scale{Runs: *runs, TrainingRuns: 500})
	t3 := experiments.RunTable3(r)
	fmt.Print(t3.Render())

	fmt.Println("\nwhat to look for (the paper's findings):")
	fmt.Println("  - each top predictor spikes at one bug column;")
	fmt.Println("  - bug #8 (never triggered) has no column at all;")
	fmt.Println("  - bug #7 (harmless) never dominates a predictor — its runs")
	fmt.Println("    always fail because of some other bug;")
	fmt.Println("  - the rarest bug (#2) still gets a predictor, after the")
	fmt.Println("    common ones.")
}
