// crashless-oracle shows that statistical debugging isolates bugs that
// never crash, provided runs can be labeled (paper §4.1, bug #9: "we
// include this bug to show that bugs other than crashing bugs can also
// be isolated ... provided there is some way to recognize failing
// runs"). The MOSS analog's bug #9 silently corrupts output; an output-
// comparison oracle against a reference build labels those runs as
// failures. We then restrict the analysis to *non-crashing* failures
// and watch the comment-handling predicates rise to the top.
//
//	go run ./examples/crashless-oracle [-runs N]
package main

import (
	"flag"
	"fmt"

	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/report"
	"cbi/internal/subjects"
)

func main() {
	runs := flag.Int("runs", 6000, "number of monitored runs")
	flag.Parse()

	res := harness.Run(harness.Config{Subject: subjects.Moss(), Runs: *runs, Mode: harness.SampleUniform})

	// Rebuild the report set keeping only non-crashed runs, labeled
	// purely by the output oracle.
	sub := &report.Set{NumSites: res.Set.NumSites, NumPreds: res.Set.NumPreds}
	var metaIdx []int
	mismatches := 0
	for i, rep := range res.Set.Reports {
		m := &res.Metas[i]
		if m.Crashed {
			continue
		}
		clone := &report.Report{
			Failed:        m.OracleMismatch,
			ObservedSites: rep.ObservedSites,
			TruePreds:     rep.TruePreds,
		}
		if m.OracleMismatch {
			mismatches++
		}
		sub.Reports = append(sub.Reports, clone)
		metaIdx = append(metaIdx, i)
	}
	fmt.Printf("moss: %d clean-exit runs, %d with wrong output (oracle-labeled)\n",
		len(sub.Reports), mismatches)

	siteOf := make([]int32, res.Plan.NumPreds())
	for i, p := range res.Plan.Preds {
		siteOf[i] = int32(p.Site)
	}
	in := core.Input{Set: sub, SiteOf: siteOf}
	ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: 6})

	fmt.Println("\ntop predictors of wrong-output runs:")
	for i, rk := range ranked {
		// Check ground truth: fraction of this predictor's failing
		// runs that exhibit bug #9.
		with9, total := 0, 0
		for j, rep := range sub.Reports {
			if rep.Failed && rep.True(int32(rk.Pred)) {
				total++
				if res.Metas[metaIdx[j]].HasBug(9) {
					with9++
				}
			}
		}
		fmt.Printf("%d. %s  (bug #9 in %d/%d of its failing runs)\n",
			i+1, res.PredText(rk.Pred), with9, total)
	}
	fmt.Println("\nexpected: comment-handling predicates (match_comment, the comment")
	fmt.Println("loop in filter_comments) dominate, and nearly all their failing runs")
	fmt.Println("carry ground-truth bug #9 — a bug that never crashes.")
}
